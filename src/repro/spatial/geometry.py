"""Geometry primitives and binary encoding.

The paper stores each edge as a geometry — "a binary object that represents the
line between node1 and node2 on the plane" — and notes that the direction of a
directed edge "is encoded in the binary object".  This module provides the
:class:`Point`, :class:`Rect` and :class:`LineSegment` primitives used across
the spatial indexes, plus a compact WKB-like binary encoding for line segments
(:func:`encode_segment` / :func:`decode_segment`).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterable

from ..errors import GeometryError

__all__ = [
    "Point",
    "Rect",
    "LineSegment",
    "encode_segment",
    "decode_segment",
    "bounding_rect",
]

#: Magic byte prefix identifying the binary segment encoding (one byte version,
#: one byte flags where bit 0 is the "directed" flag).
_SEGMENT_STRUCT = struct.Struct("<BBdddd")
_SEGMENT_VERSION = 1


@dataclass(frozen=True)
class Point:
    """A point on the Euclidean layout plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (the window of a window query).

    The rectangle is closed: points on the boundary are considered inside.
    ``min_x <= max_x`` and ``min_y <= max_y`` are enforced at construction.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"invalid rectangle: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # -------------------------------------------------------------- factories

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Return the smallest rectangle containing every point."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise GeometryError("cannot build a rectangle from zero points") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Return a ``width x height`` rectangle centred at ``center``.

        This is the window shape used by the keyword-search operation: "the
        rectangle whose size is equal to the size of the client's window and
        whose center has the same coordinates with the selected node".
        """
        if width < 0 or height < 0:
            raise GeometryError("width and height must be >= 0")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    # ------------------------------------------------------------- properties

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def perimeter(self) -> float:
        """Rectangle perimeter (used by R*-style split heuristics)."""
        return 2.0 * (self.width + self.height)

    # -------------------------------------------------------------- predicates

    def contains_point(self, point: Point) -> bool:
        """Return ``True`` if ``point`` lies inside or on the boundary."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Return ``True`` if ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Return ``True`` if the rectangles overlap (boundary touch counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    # ------------------------------------------------------------ combinators

    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle containing both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Return the area increase needed to also cover ``other``."""
        return self.union(other).area - self.area

    def expanded(self, margin: float) -> "Rect":
        """Return this rectangle grown by ``margin`` on every side."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            raise GeometryError("negative margin larger than rectangle extent")
        return Rect(
            self.min_x - margin, self.min_y - margin,
            self.max_x + margin, self.max_y + margin,
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return this rectangle shifted by ``(dx, dy)``."""
        return Rect(self.min_x + dx, self.min_y + dy, self.max_x + dx, self.max_y + dy)

    def scaled(self, factor: float) -> "Rect":
        """Return this rectangle scaled about its centre by ``factor``.

        Used by the zoom operation: zooming out increases the server-side window
        proportionally to the zoom level.
        """
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        center = self.center
        half_w = self.width * factor / 2.0
        half_h = self.height * factor / 2.0
        return Rect(center.x - half_w, center.y - half_h, center.x + half_w, center.y + half_h)

    def min_distance_to_point(self, point: Point) -> float:
        """Return the minimum distance from ``point`` to this rectangle (0 if inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)


@dataclass(frozen=True)
class LineSegment:
    """A line segment between two points (the geometry of one edge).

    ``directed`` records whether the segment represents a directed edge from
    ``start`` to ``end`` — the paper encodes edge direction in the geometry blob.
    """

    start: Point
    end: Point
    directed: bool = True

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def bounding_rect(self) -> Rect:
        """Return the minimum bounding rectangle of the segment."""
        return Rect(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    def midpoint(self) -> Point:
        """Return the segment midpoint."""
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "LineSegment":
        """Return the segment shifted by ``(dx, dy)``."""
        return LineSegment(self.start.translated(dx, dy), self.end.translated(dx, dy), self.directed)

    def intersects_rect(self, rect: Rect) -> bool:
        """Return ``True`` if any part of the segment lies inside ``rect``.

        Window queries must return edges that merely pass through the window even
        when both endpoints are outside; this implements the exact segment/box
        overlap test (Cohen–Sutherland style region outcodes plus a separating
        axis check against the segment's supporting line).
        """
        if rect.contains_point(self.start) or rect.contains_point(self.end):
            return True
        if not rect.intersects(self.bounding_rect()):
            return False
        # Both endpoints outside and bounding boxes overlap: the segment crosses
        # the rectangle iff the rectangle's corners are not all strictly on the
        # same side of the segment's supporting line.
        x1, y1 = self.start.x, self.start.y
        x2, y2 = self.end.x, self.end.y
        dx = x2 - x1
        dy = y2 - y1
        corners = (
            (rect.min_x, rect.min_y),
            (rect.min_x, rect.max_y),
            (rect.max_x, rect.min_y),
            (rect.max_x, rect.max_y),
        )
        sides = [dx * (cy - y1) - dy * (cx - x1) for cx, cy in corners]
        has_positive = any(side > 0 for side in sides)
        has_negative = any(side < 0 for side in sides)
        if has_positive and has_negative:
            return True
        # All corners on one side, or collinear: handles the degenerate case of a
        # zero-length segment (a point) whose containment was already checked.
        return any(side == 0 for side in sides)


def bounding_rect(segments: Iterable[LineSegment]) -> Rect:
    """Return the minimum bounding rectangle over every segment."""
    rects = [segment.bounding_rect() for segment in segments]
    if not rects:
        raise GeometryError("cannot compute the bounding box of zero segments")
    result = rects[0]
    for rect in rects[1:]:
        result = result.union(rect)
    return result


def encode_segment(segment: LineSegment) -> bytes:
    """Encode a segment into the compact binary (WKB-like) edge-geometry format."""
    flags = 1 if segment.directed else 0
    return _SEGMENT_STRUCT.pack(
        _SEGMENT_VERSION, flags,
        segment.start.x, segment.start.y, segment.end.x, segment.end.y,
    )


def decode_segment(blob: bytes) -> LineSegment:
    """Decode a binary edge geometry produced by :func:`encode_segment`."""
    try:
        version, flags, x1, y1, x2, y2 = _SEGMENT_STRUCT.unpack(blob)
    except struct.error as exc:
        raise GeometryError(f"invalid edge geometry blob ({len(blob)} bytes)") from exc
    if version != _SEGMENT_VERSION:
        raise GeometryError(f"unsupported edge geometry version {version}")
    return LineSegment(Point(x1, y1), Point(x2, y2), directed=bool(flags & 1))

"""B+-tree index.

The paper's storage scheme builds B-trees on the ``Node1 ID`` and ``Node2 ID``
columns "to retrieve all information about a node efficiently".  This module is
a from-scratch B+-tree mapping integer keys to lists of row identifiers
(non-unique index semantics, like a MySQL secondary index): keys live in the
leaves, leaves are chained for range scans, and internal nodes only route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import SpatialIndexError

__all__ = ["BPlusTree"]


@dataclass
class _LeafNode:
    keys: list[int] = field(default_factory=list)
    values: list[list[object]] = field(default_factory=list)
    next_leaf: "_LeafNode | None" = None

    @property
    def leaf(self) -> bool:
        return True


@dataclass
class _InternalNode:
    keys: list[int] = field(default_factory=list)
    children: list[object] = field(default_factory=list)

    @property
    def leaf(self) -> bool:
        return False


class BPlusTree:
    """A B+-tree from integer keys to lists of opaque values.

    Parameters
    ----------
    order:
        Maximum number of children of an internal node (and of keys in a leaf).
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise SpatialIndexError("B+-tree order must be >= 3")
        self.order = order
        self._root: _LeafNode | _InternalNode = _LeafNode()
        self._num_keys = 0
        self._num_values = 0

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        """Number of stored values (not distinct keys)."""
        return self._num_values

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return self._num_keys

    # -------------------------------------------------------------- bulk build

    @classmethod
    def bulk_build(
        cls, items: list[tuple[int, list[object]]], order: int = 64
    ) -> "BPlusTree":
        """Build a tree from sorted ``(key, values)`` pairs without inserts.

        ``items`` must be in strictly ascending key order (the order
        :meth:`items` yields, which is how persisted index pages are laid
        out).  Leaves are constructed directly at a 2/3 fill factor and the
        internal levels grown bottom-up, so restoring a persisted index is
        O(n) instead of n × O(log n) root-to-leaf descents.
        """
        tree = cls(order=order)
        if not items:
            return tree
        fill = max(2, (order * 2) // 3)
        leaves: list[_LeafNode] = []
        for start in range(0, len(items), fill):
            chunk = items[start:start + fill]
            leaf = _LeafNode(
                keys=[key for key, _ in chunk],
                values=[list(values) for _, values in chunk],
            )
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        tree._num_keys = len(items)
        tree._num_values = sum(len(values) for _, values in items)
        level: list[object] = list(leaves)
        min_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: list[object] = []
            parent_mins: list[int] = []
            for start in range(0, len(level), fill):
                children = level[start:start + fill]
                child_mins = min_keys[start:start + fill]
                parents.append(
                    _InternalNode(keys=child_mins[1:], children=list(children))
                )
                parent_mins.append(child_mins[0])
            level = parents
            min_keys = parent_mins
        tree._root = level[0]  # type: ignore[assignment]
        return tree

    # ---------------------------------------------------------------- mutation

    def insert(self, key: int, value: object) -> None:
        """Insert ``value`` under ``key`` (duplicates per key are kept in order)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            middle_key, right = split
            new_root = _InternalNode(keys=[middle_key], children=[self._root, right])
            self._root = new_root
        self._num_values += 1

    def _insert(
        self, node: _LeafNode | _InternalNode, key: int, value: object
    ) -> tuple[int, object] | None:
        if node.leaf:
            index = _lower_bound(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            self._num_keys += 1
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node)
        internal: _InternalNode = node  # type: ignore[assignment]
        child_index = _upper_bound(internal.keys, key)
        split = self._insert(internal.children[child_index], key, value)  # type: ignore[arg-type]
        if split is None:
            return None
        middle_key, right = split
        internal.keys.insert(child_index, middle_key)
        internal.children.insert(child_index + 1, right)
        if len(internal.children) <= self.order:
            return None
        return self._split_internal(internal)

    def _split_leaf(self, leaf: _LeafNode) -> tuple[int, _LeafNode]:
        middle = len(leaf.keys) // 2
        right = _LeafNode(
            keys=leaf.keys[middle:],
            values=leaf.values[middle:],
            next_leaf=leaf.next_leaf,
        )
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode) -> tuple[int, _InternalNode]:
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _InternalNode(
            keys=node.keys[middle + 1:],
            children=node.children[middle + 1:],
        )
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return middle_key, right

    def remove(self, key: int, value: object | None = None) -> int:
        """Remove ``value`` under ``key`` (or all values when ``value`` is ``None``).

        Returns the number of values removed.  Structural rebalancing on deletion
        is not performed (leaves may become sparse), which keeps the index correct
        — lookups never visit empty slots — at a small space cost; the workloads
        the paper targets are read-dominant.
        """
        leaf, index = self._find_leaf(key)
        if index is None:
            return 0
        if value is None:
            removed = len(leaf.values[index])
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._num_keys -= 1
            self._num_values -= removed
            return removed
        bucket = leaf.values[index]
        try:
            bucket.remove(value)
        except ValueError:
            return 0
        self._num_values -= 1
        if not bucket:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._num_keys -= 1
        return 1

    # ----------------------------------------------------------------- queries

    def search(self, key: int) -> list[object]:
        """Return all values stored under ``key`` (empty list when absent)."""
        leaf, index = self._find_leaf(key)
        if index is None:
            return []
        return list(leaf.values[index])

    def contains(self, key: int) -> bool:
        """Return ``True`` if the key exists."""
        _, index = self._find_leaf(key)
        return index is not None

    def range_search(self, low: int, high: int) -> list[tuple[int, object]]:
        """Return ``(key, value)`` pairs for keys in ``[low, high]`` in key order."""
        if low > high:
            return []
        results: list[tuple[int, object]] = []
        leaf = self._descend_to_leaf(low)
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.values):
                if key > high:
                    return results
                if key >= low:
                    results.extend((key, value) for value in bucket)
            leaf = leaf.next_leaf
        return results

    def keys(self) -> Iterator[int]:
        """Yield all keys in ascending order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[int, object]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for key, bucket in zip(leaf.keys, leaf.values):
                for value in bucket:
                    yield key, value
            leaf = leaf.next_leaf

    # ----------------------------------------------------------------- helpers

    def _descend_to_leaf(self, key: int) -> _LeafNode:
        node = self._root
        while not node.leaf:
            internal: _InternalNode = node  # type: ignore[assignment]
            node = internal.children[_upper_bound(internal.keys, key)]  # type: ignore[assignment]
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while not node.leaf:
            node = node.children[0]  # type: ignore[union-attr,assignment]
        return node  # type: ignore[return-value]

    def _find_leaf(self, key: int) -> tuple[_LeafNode, int | None]:
        leaf = self._descend_to_leaf(key)
        index = _lower_bound(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf, index
        return leaf, None

    def height(self) -> int:
        """Return the height of the tree (1 for a single leaf)."""
        height = 1
        node = self._root
        while not node.leaf:
            height += 1
            node = node.children[0]  # type: ignore[union-attr,assignment]
        return height

    def check_invariants(self) -> None:
        """Validate ordering and fan-out invariants (used by property tests)."""
        previous_key: int | None = None
        for key in self.keys():
            if previous_key is not None and key <= previous_key:
                raise SpatialIndexError("B+-tree keys are not strictly increasing")
            previous_key = key

        def visit(node: _LeafNode | _InternalNode) -> None:
            if node.leaf:
                if len(node.keys) > self.order:
                    raise SpatialIndexError("leaf exceeds order")
                return
            internal: _InternalNode = node  # type: ignore[assignment]
            if len(internal.children) > self.order:
                raise SpatialIndexError("internal node exceeds order")
            if len(internal.children) != len(internal.keys) + 1:
                raise SpatialIndexError("internal node children/keys mismatch")
            for child in internal.children:
                visit(child)  # type: ignore[arg-type]

        visit(self._root)


def _lower_bound(keys: list[int], key: int) -> int:
    """Return the first index whose key is >= ``key``."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] < key:
            low = mid + 1
        else:
            high = mid
    return low


def _upper_bound(keys: list[int], key: int) -> int:
    """Return the first index whose key is > ``key``."""
    low, high = 0, len(keys)
    while low < high:
        mid = (low + high) // 2
        if keys[mid] <= key:
            low = mid + 1
        else:
            high = mid
    return low

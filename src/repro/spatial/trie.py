"""Full-text index over node and edge labels.

The paper builds MySQL FULLTEXT indexes — which it describes as tries — on the
label columns, and uses them for the keyword-search operation: "a keyword query
is ... evaluated on the whole set of node labels which are indexed with tries.
The result of this query is a list of nodes whose labels contain the given
keyword."

Two structures are provided:

* :class:`Trie` — a plain character trie supporting exact and prefix lookups;
* :class:`FullTextIndex` — the label index used by the query manager: it
  tokenises labels, stores each token in a trie, and supports *contains*
  semantics (substring match on tokens) so that searching ``"faloutsos"``
  matches the label ``"Christos Faloutsos"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Trie", "FullTextIndex", "tokenize"]


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    Mirrors the word-boundary tokenisation of a SQL full-text index: anything
    that is not a letter or digit separates tokens.
    """
    tokens: list[str] = []
    current: list[str] = []
    for char in text.lower():
        if char.isalnum():
            current.append(char)
        elif current:
            tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return tokens


@dataclass
class _TrieNode:
    children: dict[str, "_TrieNode"] = field(default_factory=dict)
    #: Document ids whose token terminates at this node.
    documents: set[object] = field(default_factory=set)
    terminal: bool = False


class Trie:
    """A character trie mapping words to sets of document ids."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._num_words = 0

    def __len__(self) -> int:
        """Number of distinct words stored."""
        return self._num_words

    def insert(self, word: str, document: object) -> None:
        """Associate ``document`` with ``word``."""
        node = self._root
        for char in word:
            node = node.children.setdefault(char, _TrieNode())
        if not node.terminal:
            node.terminal = True
            self._num_words += 1
        node.documents.add(document)

    def insert_many(self, word: str, documents: Iterable[object]) -> None:
        """Associate many documents with ``word`` in one descent.

        The bulk-restore path for persisted label pages: one walk to the
        terminal node and a set update, instead of one full descent per
        document.
        """
        node = self._root
        for char in word:
            node = node.children.setdefault(char, _TrieNode())
        if not node.terminal:
            node.terminal = True
            self._num_words += 1
        node.documents.update(documents)

    def remove(self, word: str, document: object) -> bool:
        """Remove the association; return ``True`` if it existed.

        Empty branches are pruned so the trie does not accumulate dead nodes when
        labels are edited.
        """
        path: list[tuple[_TrieNode, str]] = []
        node = self._root
        for char in word:
            child = node.children.get(char)
            if child is None:
                return False
            path.append((node, char))
            node = child
        if document not in node.documents:
            return False
        node.documents.discard(document)
        if not node.documents and node.terminal:
            node.terminal = False
            self._num_words -= 1
        # Prune empty leaves bottom-up.
        for parent, char in reversed(path):
            child = parent.children[char]
            if child.children or child.documents or child.terminal:
                break
            del parent.children[char]
        return True

    def exact(self, word: str) -> set[object]:
        """Return the documents stored under exactly ``word``."""
        node = self._find(word)
        if node is None or not node.terminal:
            return set()
        return set(node.documents)

    def starts_with(self, prefix: str) -> set[object]:
        """Return the documents of every word starting with ``prefix``."""
        node = self._find(prefix)
        if node is None:
            return set()
        results: set[object] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current.terminal:
                results |= current.documents
            stack.extend(current.children.values())
        return results

    def words(self) -> Iterator[str]:
        """Yield every stored word in lexicographic order."""
        def visit(node: _TrieNode, prefix: str) -> Iterator[str]:
            if node.terminal:
                yield prefix
            for char in sorted(node.children):
                yield from visit(node.children[char], prefix + char)

        yield from visit(self._root, "")

    def _find(self, word: str) -> _TrieNode | None:
        node = self._root
        for char in word:
            node = node.children.get(char)
            if node is None:
                return None
        return node


class FullTextIndex:
    """Keyword index over labelled documents (node rows, edge rows).

    Each document is registered with a label; the label is tokenised and each
    token inserted into a trie.  Searches support three modes used by the demo's
    Search panel:

    * ``exact`` — the keyword equals a whole token;
    * ``prefix`` — a token starts with the keyword (autocomplete behaviour);
    * ``contains`` — the keyword appears anywhere inside a token (MySQL-LIKE
      behaviour, implemented with an auxiliary suffix registration of tokens).
    """

    def __init__(self, index_substrings: bool = True) -> None:
        self._trie = Trie()
        self._suffix_trie = Trie() if index_substrings else None
        self._labels: dict[object, str] = {}

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._labels)

    def add(self, document: object, label: str) -> None:
        """Index ``document`` under ``label`` (replacing any previous label)."""
        if document in self._labels:
            self.remove(document)
        self._labels[document] = label
        for token in tokenize(label):
            self._trie.insert(token, document)
            if self._suffix_trie is not None:
                for start in range(len(token)):
                    self._suffix_trie.insert(token[start:], document)

    def remove(self, document: object) -> bool:
        """Remove a document from the index; return ``True`` if it was present."""
        label = self._labels.pop(document, None)
        if label is None:
            return False
        for token in tokenize(label):
            self._trie.remove(token, document)
            if self._suffix_trie is not None:
                for start in range(len(token)):
                    self._suffix_trie.remove(token[start:], document)
        return True

    def label_of(self, document: object) -> str | None:
        """Return the indexed label of ``document`` (``None`` if not indexed)."""
        return self._labels.get(document)

    def labeled_documents(self) -> list[tuple[object, str]]:
        """Every ``(document, label)`` pair — the index's persistable content."""
        return list(self._labels.items())

    @classmethod
    def bulk_build(
        cls, entries: list[tuple[object, str]], index_substrings: bool = True
    ) -> "FullTextIndex":
        """Build an index from ``(document, label)`` pairs, grouping by label.

        The restore path for persisted label pages: each *distinct* label is
        tokenised once and every token (and suffix, for contains-mode) is
        inserted with the whole set of documents sharing that label — node
        labels repeat across many rows, so this is far cheaper than the
        per-document :meth:`add` loop while producing an identical index.
        """
        index = cls(index_substrings=index_substrings)
        by_label: dict[str, list[object]] = {}
        for document, label in entries:
            index._labels[document] = label
            by_label.setdefault(label, []).append(document)
        for label, documents in by_label.items():
            for token in set(tokenize(label)):
                index._trie.insert_many(token, documents)
                if index._suffix_trie is not None:
                    for start in range(len(token)):
                        index._suffix_trie.insert_many(token[start:], documents)
        return index

    def search(self, keyword: str, mode: str = "contains") -> list[object]:
        """Return documents matching ``keyword``.

        Parameters
        ----------
        mode:
            ``"exact"``, ``"prefix"`` or ``"contains"`` (default, the behaviour
            described in the paper: labels that *contain* the keyword).
        """
        tokens = tokenize(keyword)
        if not tokens:
            return []
        result: set[object] | None = None
        for token in tokens:
            matches = self._search_token(token, mode)
            result = matches if result is None else (result & matches)
            if not result:
                return []
        assert result is not None
        return sorted(result, key=lambda doc: (str(self._labels.get(doc, "")), str(doc)))

    def _search_token(self, token: str, mode: str) -> set[object]:
        if mode == "exact":
            return self._trie.exact(token)
        if mode == "prefix":
            return self._trie.starts_with(token)
        if mode == "contains":
            if self._suffix_trie is not None:
                return self._suffix_trie.starts_with(token)
            # Fall back to a scan when substring indexing is disabled.
            return {
                document
                for document, label in self._labels.items()
                if token in label.lower()
            }
        raise ValueError(f"unknown search mode {mode!r}")

    def documents(self) -> Iterable[object]:
        """Return all indexed documents."""
        return self._labels.keys()

"""Uniform grid spatial index (ablation alternative to the R-tree).

The paper chose an R-tree; the benchmark harness includes an ablation comparing
it against this fixed-resolution grid index and against a linear scan, to show
where the R-tree's advantage comes from (skewed data and large extents are
handled gracefully, whereas a uniform grid needs the right cell size).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable

from ..errors import SpatialIndexError
from .geometry import Point, Rect

__all__ = ["GridIndex"]


class GridIndex:
    """A uniform grid over ``(Rect, item)`` entries.

    Each entry is registered in every cell its rectangle overlaps; window queries
    collect candidate entries from the cells overlapping the window and then
    filter by exact rectangle intersection.
    """

    def __init__(self, cell_size: float = 500.0) -> None:
        if cell_size <= 0:
            raise SpatialIndexError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[Rect, object]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @classmethod
    def bulk_load(
        cls, entries: Iterable[tuple[Rect, object]], cell_size: float = 500.0
    ) -> "GridIndex":
        """Build a grid index from an iterable of ``(rect, item)`` pairs."""
        index = cls(cell_size=cell_size)
        for rect, item in entries:
            index.insert(rect, item)
        return index

    def _cell_range(self, rect: Rect) -> tuple[int, int, int, int]:
        """Return the inclusive cell coordinate range covered by ``rect``."""
        min_cx = math.floor(rect.min_x / self.cell_size)
        min_cy = math.floor(rect.min_y / self.cell_size)
        max_cx = math.floor(rect.max_x / self.cell_size)
        max_cy = math.floor(rect.max_y / self.cell_size)
        return min_cx, min_cy, max_cx, max_cy

    def insert(self, rect: Rect, item: object) -> None:
        """Insert one entry."""
        min_cx, min_cy, max_cx, max_cy = self._cell_range(rect)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                self._cells[(cx, cy)].append((rect, item))
        self._count += 1

    def window_query(self, window: Rect) -> list[object]:
        """Return items whose rectangle intersects ``window`` (deduplicated)."""
        min_cx, min_cy, max_cx, max_cy = self._cell_range(window)
        seen: set[int] = set()
        results: list[object] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                for rect, item in self._cells.get((cx, cy), ()):
                    marker = id(item)
                    if marker in seen:
                        continue
                    if rect.intersects(window):
                        seen.add(marker)
                        results.append(item)
        return results

    def point_query(self, point: Point) -> list[object]:
        """Return items whose rectangle contains ``point``."""
        return self.window_query(Rect(point.x, point.y, point.x, point.y))

    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

"""R-tree spatial index.

The paper indexes every edge geometry with an R-tree so that interactive window
queries — the backbone of all three online operations — become index lookups.
This is a from-scratch implementation supporting:

* incremental insertion with Guttman's quadratic split;
* Sort-Tile-Recursive (STR) bulk loading, used by the preprocessing pipeline to
  build a well-packed tree in one pass (Step 5);
* window (range) queries, point queries, k-nearest-neighbour queries and
  deletion (needed by the Edit panel when geometries change).

Entries are ``(rect, item)`` pairs; the tree never interprets ``item``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import SpatialIndexError
from .geometry import Point, Rect

__all__ = ["RTree", "RTreeEntry", "RTreeStats"]


@dataclass
class RTreeEntry:
    """A leaf entry: a bounding rectangle plus an opaque item payload."""

    rect: Rect
    item: object


@dataclass
class _Node:
    """Internal tree node; ``children`` holds nodes, ``entries`` holds leaf entries."""

    leaf: bool
    entries: list[RTreeEntry] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)
    rect: Rect | None = None

    def recompute_rect(self) -> None:
        """Recompute the minimum bounding rectangle from the node's contents.

        Min/max scalars are accumulated and a single :class:`Rect` is built at
        the end — no intermediate union rectangles are allocated.
        """
        if self.leaf:
            rects = (entry.rect for entry in self.entries)
        else:
            rects = (child.rect for child in self.children if child.rect is not None)
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        empty = True
        for rect in rects:
            empty = False
            if rect.min_x < min_x:
                min_x = rect.min_x
            if rect.min_y < min_y:
                min_y = rect.min_y
            if rect.max_x > max_x:
                max_x = rect.max_x
            if rect.max_y > max_y:
                max_y = rect.max_y
        self.rect = None if empty else Rect(min_x, min_y, max_x, max_y)

    def size(self) -> int:
        """Return the number of entries or children held by this node."""
        return len(self.entries) if self.leaf else len(self.children)


@dataclass(frozen=True)
class RTreeStats:
    """Structural statistics, surfaced by benchmarks and tests."""

    height: int
    num_nodes: int
    num_leaves: int
    num_entries: int
    max_entries: int


class RTree:
    """An R-tree over ``(Rect, item)`` entries.

    Parameters
    ----------
    max_entries:
        Maximum node fan-out; nodes exceeding it are split.
    min_fill:
        Minimum fill fraction after a split (Guttman recommends 0.4).
    split_method:
        ``"quadratic"`` (Guttman's quadratic split, default) or ``"rstar"``
        (the R*-tree topological split: choose the split axis by minimum margin
        sum, then the split index by minimum overlap).  The storage layer keeps
        the default; the index ablation benchmark compares the two.
    """

    #: Dynamic trees support insert/delete; the packed variant does not.
    supports_updates = True

    def __init__(
        self,
        max_entries: int = 32,
        min_fill: float = 0.4,
        split_method: str = "quadratic",
    ) -> None:
        if max_entries < 4:
            raise SpatialIndexError("max_entries must be >= 4")
        if not 0.0 < min_fill <= 0.5:
            raise SpatialIndexError("min_fill must be in (0, 0.5]")
        if split_method not in {"quadratic", "rstar"}:
            raise SpatialIndexError(
                f"unknown split method {split_method!r}; expected quadratic or rstar"
            )
        self.max_entries = max_entries
        self.min_entries = max(2, int(max_entries * min_fill))
        self.split_method = split_method
        self._root = _Node(leaf=True)
        self._count = 0

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        return self._count

    @property
    def bounds(self) -> Rect | None:
        """Bounding rectangle of the whole tree (``None`` when empty)."""
        return self._root.rect

    # ---------------------------------------------------------------- insertion

    def insert(self, rect: Rect, item: object) -> None:
        """Insert one entry."""
        entry = RTreeEntry(rect, item)
        leaf = self._choose_leaf(self._root, rect, path := [])
        leaf.entries.append(entry)
        self._count += 1
        self._adjust_upwards(leaf, path)

    def _choose_leaf(self, node: _Node, rect: Rect, path: list[_Node]) -> _Node:
        """Descend to the leaf whose MBR needs the least enlargement.

        Enlargement and area are computed from min/max scalars directly; no
        intermediate union rectangle is allocated per candidate child.
        """
        r_min_x, r_min_y, r_max_x, r_max_y = rect.min_x, rect.min_y, rect.max_x, rect.max_y
        current = node
        while not current.leaf:
            path.append(current)
            best_child = None
            best_key: tuple[float, float] | None = None
            for child in current.children:
                child_rect = child.rect if child.rect is not None else rect
                width = child_rect.max_x - child_rect.min_x
                height = child_rect.max_y - child_rect.min_y
                area = width * height
                union_w = (
                    (child_rect.max_x if child_rect.max_x > r_max_x else r_max_x)
                    - (child_rect.min_x if child_rect.min_x < r_min_x else r_min_x)
                )
                union_h = (
                    (child_rect.max_y if child_rect.max_y > r_max_y else r_max_y)
                    - (child_rect.min_y if child_rect.min_y < r_min_y else r_min_y)
                )
                key = (union_w * union_h - area, area)
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            assert best_child is not None
            current = best_child
        return current

    def _adjust_upwards(self, node: _Node, path: list[_Node]) -> None:
        """Propagate rectangle updates and splits from ``node`` towards the root."""
        node.recompute_rect()
        split = self._split_if_needed(node)
        for parent in reversed(path):
            if split is not None:
                parent.children.append(split)
            parent.recompute_rect()
            split = self._split_if_needed(parent)
        if split is not None:
            # Root overflowed: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False, children=[old_root, split])
            new_root.recompute_rect()
            self._root = new_root

    def _split_if_needed(self, node: _Node) -> _Node | None:
        """Split ``node`` if it exceeds the fan-out; return the new sibling."""
        if node.size() <= self.max_entries:
            return None
        if self.split_method == "rstar":
            return self._rstar_split(node)
        return self._quadratic_split(node)

    def _quadratic_split(self, node: _Node) -> _Node:
        """Guttman's quadratic split: seeds are the pair wasting the most area."""
        if node.leaf:
            items: list[tuple[Rect, object]] = [(entry.rect, entry) for entry in node.entries]
        else:
            items = [(child.rect, child) for child in node.children if child.rect is not None]

        seed_a, seed_b = self._pick_seeds([rect for rect, _ in items])
        group_a: list[tuple[Rect, object]] = [items[seed_a]]
        group_b: list[tuple[Rect, object]] = [items[seed_b]]
        rect_a = items[seed_a][0]
        rect_b = items[seed_b][0]
        remaining = [item for index, item in enumerate(items) if index not in (seed_a, seed_b)]

        while remaining:
            # If one group must absorb the rest to reach the minimum fill, do so.
            needed_a = self.min_entries - len(group_a)
            needed_b = self.min_entries - len(group_b)
            if needed_a >= len(remaining):
                group_a.extend(remaining)
                for rect, _ in remaining:
                    rect_a = rect_a.union(rect)
                remaining = []
                break
            if needed_b >= len(remaining):
                group_b.extend(remaining)
                for rect, _ in remaining:
                    rect_b = rect_b.union(rect)
                remaining = []
                break
            # Pick the entry with the greatest preference for one group.
            best_index = 0
            best_diff = -1.0
            for index, (rect, _) in enumerate(remaining):
                d_a = rect_a.enlargement(rect)
                d_b = rect_b.enlargement(rect)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_index = index
            rect, payload = remaining.pop(best_index)
            if rect_a.enlargement(rect) <= rect_b.enlargement(rect):
                group_a.append((rect, payload))
                rect_a = rect_a.union(rect)
            else:
                group_b.append((rect, payload))
                rect_b = rect_b.union(rect)

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = [payload for _, payload in group_a]  # type: ignore[misc]
            sibling.entries = [payload for _, payload in group_b]  # type: ignore[misc]
        else:
            node.children = [payload for _, payload in group_a]  # type: ignore[misc]
            sibling.children = [payload for _, payload in group_b]  # type: ignore[misc]
        node.recompute_rect()
        sibling.recompute_rect()
        return sibling

    def _rstar_split(self, node: _Node) -> _Node:
        """R*-tree topological split.

        The split axis is the one (x or y) whose candidate distributions have
        the smallest total margin (perimeter); the split index along that axis
        is the distribution with the smallest overlap between the two groups
        (ties broken by total area).
        """
        if node.leaf:
            items: list[tuple[Rect, object]] = [(entry.rect, entry) for entry in node.entries]
        else:
            items = [(child.rect, child) for child in node.children if child.rect is not None]

        best_axis_items: list[tuple[Rect, object]] | None = None
        best_axis_margin = math.inf
        for axis in ("x", "y"):
            if axis == "x":
                ordered = sorted(items, key=lambda item: (item[0].min_x, item[0].max_x))
            else:
                ordered = sorted(items, key=lambda item: (item[0].min_y, item[0].max_y))
            margin = 0.0
            for split_at in self._split_positions(len(ordered)):
                left = self._union_of(ordered[:split_at])
                right = self._union_of(ordered[split_at:])
                margin += left.perimeter + right.perimeter
            if margin < best_axis_margin:
                best_axis_margin = margin
                best_axis_items = ordered
        assert best_axis_items is not None

        best_split = self.min_entries
        best_key: tuple[float, float] = (math.inf, math.inf)
        for split_at in self._split_positions(len(best_axis_items)):
            left = self._union_of(best_axis_items[:split_at])
            right = self._union_of(best_axis_items[split_at:])
            intersection = left.intersection(right)
            overlap = intersection.area if intersection is not None else 0.0
            key = (overlap, left.area + right.area)
            if key < best_key:
                best_key = key
                best_split = split_at

        group_a = best_axis_items[:best_split]
        group_b = best_axis_items[best_split:]
        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = [payload for _, payload in group_a]  # type: ignore[misc]
            sibling.entries = [payload for _, payload in group_b]  # type: ignore[misc]
        else:
            node.children = [payload for _, payload in group_a]  # type: ignore[misc]
            sibling.children = [payload for _, payload in group_b]  # type: ignore[misc]
        node.recompute_rect()
        sibling.recompute_rect()
        return sibling

    def _split_positions(self, count: int) -> range:
        """Valid split indices keeping both groups at or above the minimum fill."""
        return range(self.min_entries, count - self.min_entries + 1)

    @staticmethod
    def _union_of(items: list[tuple[Rect, object]]) -> Rect:
        rect = items[0][0]
        for other, _ in items[1:]:
            rect = rect.union(other)
        return rect

    @staticmethod
    def _pick_seeds(rects: list[Rect]) -> tuple[int, int]:
        """Return the indices of the two rectangles that waste the most area together."""
        best_pair = (0, 1)
        best_waste = -math.inf
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = rects[i].union(rects[j]).area - rects[i].area - rects[j].area
                if waste > best_waste:
                    best_waste = waste
                    best_pair = (i, j)
        return best_pair

    # --------------------------------------------------------------- bulk load

    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[tuple[Rect, object]],
        max_entries: int = 32,
        min_fill: float = 0.4,
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive (STR) bulk loading.

        STR sorts entries by the x-coordinate of their centres, slices them into
        vertical strips, sorts each strip by y, and packs consecutive runs of
        ``max_entries`` into leaves; the process repeats one level up until a
        single root remains.
        """
        tree = cls(max_entries=max_entries, min_fill=min_fill)
        leaf_entries = [RTreeEntry(rect, item) for rect, item in entries]
        tree._count = len(leaf_entries)
        if not leaf_entries:
            return tree

        # Pack leaves.
        leaves = [
            _Node(leaf=True, entries=chunk)
            for chunk in cls._str_pack(
                leaf_entries, max_entries, key=lambda entry: entry.rect.center
            )
        ]
        for leaf in leaves:
            leaf.recompute_rect()

        # Pack internal levels until one node remains.
        level: list[_Node] = leaves
        while len(level) > 1:
            parents = [
                _Node(leaf=False, children=chunk)
                for chunk in cls._str_pack(
                    level, max_entries,
                    key=lambda node: node.rect.center if node.rect else Point(0.0, 0.0),
                )
            ]
            for parent in parents:
                parent.recompute_rect()
            level = parents
        tree._root = level[0]
        return tree

    @staticmethod
    def _str_pack(items: list, capacity: int, key) -> list[list]:
        """Group ``items`` into runs of ``capacity`` using the STR tiling order."""
        count = len(items)
        if count <= capacity:
            return [list(items)]
        num_leaves = math.ceil(count / capacity)
        num_slices = math.ceil(math.sqrt(num_leaves))
        slice_size = num_slices * capacity
        by_x = sorted(items, key=lambda item: key(item).x)
        chunks: list[list] = []
        for start in range(0, count, slice_size):
            strip = sorted(by_x[start:start + slice_size], key=lambda item: key(item).y)
            for inner in range(0, len(strip), capacity):
                chunks.append(strip[inner:inner + capacity])
        return chunks

    # ----------------------------------------------------------------- queries

    def window_query(self, window: Rect) -> list[object]:
        """Return the items of every entry whose rectangle intersects ``window``.

        This is the spatial operation the paper maps every user interaction to.
        """
        results: list[object] = []
        if self._root.rect is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects(window):
                continue
            if node.leaf:
                for entry in node.entries:
                    if entry.rect.intersects(window):
                        results.append(entry.item)
            else:
                stack.extend(node.children)
        return results

    def window_query_batch(self, windows: Iterable[Rect]) -> list[list[object]]:
        """Evaluate many windows; parity with :class:`PackedRTree`'s batch path."""
        return [self.window_query(window) for window in windows]

    def count_window(self, window: Rect) -> int:
        """Return the number of entries intersecting ``window`` without materialising them."""
        count = 0
        if self._root.rect is None:
            return 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects(window):
                continue
            if window.contains_rect(node.rect) and not node.leaf:
                count += sum(1 for _ in self._iter_entries(node))
                continue
            if node.leaf:
                count += sum(1 for entry in node.entries if entry.rect.intersects(window))
            else:
                stack.extend(node.children)
        return count

    def point_query(self, point: Point) -> list[object]:
        """Return items whose rectangle contains ``point``."""
        window = Rect(point.x, point.y, point.x, point.y)
        return self.window_query(window)

    def nearest(self, point: Point, k: int = 1) -> list[object]:
        """Return the ``k`` entries nearest to ``point`` (best-first search)."""
        if k <= 0 or self._root.rect is None:
            return []
        # Priority queue of (distance, tiebreak, is_entry, payload).
        counter = 0
        heap: list[tuple[float, int, bool, object]] = [
            (self._root.rect.min_distance_to_point(point), counter, False, self._root)
        ]
        results: list[object] = []
        while heap and len(results) < k:
            _, __, is_entry, payload = heapq.heappop(heap)
            if is_entry:
                results.append(payload.item)  # type: ignore[attr-defined]
                continue
            node: _Node = payload  # type: ignore[assignment]
            if node.leaf:
                for entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (entry.rect.min_distance_to_point(point), counter, True, entry),
                    )
            else:
                for child in node.children:
                    if child.rect is None:
                        continue
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.rect.min_distance_to_point(point), counter, False, child),
                    )
        return results

    def all_items(self) -> Iterator[object]:
        """Yield every stored item (no particular order)."""
        for entry in self._iter_entries(self._root):
            yield entry.item

    def _iter_entries(self, node: _Node) -> Iterator[RTreeEntry]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.leaf:
                yield from current.entries
            else:
                stack.extend(current.children)

    # ---------------------------------------------------------------- deletion

    def delete(self, rect: Rect, item: object) -> bool:
        """Delete the entry matching ``(rect, item)``; return ``True`` if found.

        Underfull leaves are handled by re-inserting their remaining entries
        (the classic "condense tree" strategy simplified for this use case).
        """
        found = self._delete_recursive(self._root, rect, item)
        if not found:
            return False
        self._count -= 1
        # Shrink the root if it has a single non-leaf child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._root.recompute_rect()
        return True

    def _delete_recursive(self, node: _Node, rect: Rect, item: object) -> bool:
        if node.rect is not None and not node.rect.intersects(rect):
            return False
        if node.leaf:
            for index, entry in enumerate(node.entries):
                if entry.item == item and entry.rect == rect:
                    node.entries.pop(index)
                    node.recompute_rect()
                    return True
            return False
        for child in node.children:
            if self._delete_recursive(child, rect, item):
                node.children = [c for c in node.children if c.size() > 0]
                node.recompute_rect()
                return True
        return False

    # --------------------------------------------------------------- structure

    def stats(self) -> RTreeStats:
        """Return structural statistics about the tree."""
        height = 0
        num_nodes = 0
        num_leaves = 0
        stack = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            num_nodes += 1
            height = max(height, depth)
            if node.leaf:
                num_leaves += 1
            else:
                stack.extend((child, depth + 1) for child in node.children)
        return RTreeStats(
            height=height,
            num_nodes=num_nodes,
            num_leaves=num_leaves,
            num_entries=self._count,
            max_entries=self.max_entries,
        )

    def check_invariants(self) -> None:
        """Validate structural invariants; raises :class:`SpatialIndexError` on failure.

        Used by property-based tests: every node's rectangle must cover its
        children/entries, and no node may exceed the configured fan-out.
        """
        def visit(node: _Node, depth: int) -> int:
            if node.size() > self.max_entries:
                raise SpatialIndexError(
                    f"node at depth {depth} has {node.size()} > {self.max_entries} entries"
                )
            if node.leaf:
                for entry in node.entries:
                    if node.rect is None or not node.rect.contains_rect(entry.rect):
                        raise SpatialIndexError("leaf MBR does not cover an entry")
                return 1
            depths = set()
            for child in node.children:
                if child.rect is None:
                    raise SpatialIndexError("internal child with empty rectangle")
                if node.rect is None or not node.rect.contains_rect(child.rect):
                    raise SpatialIndexError("internal MBR does not cover a child")
                depths.add(visit(child, depth + 1))
            if len(depths) > 1:
                raise SpatialIndexError("leaves are not all at the same depth")
            return 1 + (depths.pop() if depths else 0)

        if self._count > 0:
            visit(self._root, 0)

"""Spatial and text index substrate: geometry, R-tree, B+-tree, trie, grid index."""

from .btree import BPlusTree
from .geometry import (
    LineSegment,
    Point,
    Rect,
    bounding_rect,
    decode_segment,
    encode_segment,
)
from .grid_index import GridIndex
from .packed_rtree import PackedRTree, hilbert_d
from .rtree import RTree, RTreeEntry, RTreeStats
from .trie import FullTextIndex, Trie, tokenize

__all__ = [
    "BPlusTree",
    "LineSegment",
    "Point",
    "Rect",
    "bounding_rect",
    "decode_segment",
    "encode_segment",
    "GridIndex",
    "PackedRTree",
    "hilbert_d",
    "RTree",
    "RTreeEntry",
    "RTreeStats",
    "FullTextIndex",
    "Trie",
    "tokenize",
]

"""Flat packed (static) R-tree.

The dynamic :class:`~repro.spatial.rtree.RTree` stores one Python object per
node and per entry; every window query chases pointers through dataclasses and
allocates intermediate rectangles.  For the online phase of graphVizdb the
tables are read-mostly — geometry changes only through the Edit panel — so the
hot path can instead use an **immutable, array-backed** index:

* entries are sorted once along a Hilbert curve over their centres and stored
  in four flat ``array('d')`` coordinate columns (structure-of-arrays) plus a
  parallel ``items`` list;
* tree nodes are packed bottom-up over that single global order, so every node
  covers a *contiguous* range of the entry arrays.  A window that fully
  contains a node's rectangle is answered by slicing that range — no
  per-entry test at all;
* traversal is iterative (an explicit stack of integer node ids): no
  recursion, no per-step allocation beyond the result list;
* a batched entry point (:meth:`window_query_batch`) evaluates many windows in
  one call — the window-cache prefetcher uses it to fetch several windows'
  rows without building intermediate payloads per window.

The query surface mirrors ``RTree`` (``window_query`` / ``count_window`` /
``point_query`` / ``nearest`` / ``all_items`` / ``bounds`` / ``stats``) so the
storage layer can swap one for the other; mutation is not supported
(``supports_updates`` is ``False``) and the table falls back to the dynamic
tree when the Edit panel needs to change geometry.
"""

from __future__ import annotations

import heapq
import struct
import sys
import zlib
from array import array
from typing import Iterable, Iterator

from ..errors import SpatialIndexError
from .geometry import Point, Rect
from .rtree import RTreeStats

__all__ = ["PackedRTree", "hilbert_d", "PACKED_PAGE_VERSION"]

#: Version of the :meth:`PackedRTree.to_bytes` page format.  Bump on any layout
#: change; :meth:`PackedRTree.from_bytes` rejects other versions so persisted
#: pages from an incompatible build fall back to an index rebuild.
PACKED_PAGE_VERSION = 1

#: Page header: magic, version, flags (bit 0: little-endian payload),
#: max_entries, num_entries, num_nodes, num_leaves, height, CRC-32 of the
#: column payload (everything after the header).
_PAGE_MAGIC = b"GVPR"
_PAGE_HEADER = struct.Struct("<4sHHIQQQQI")
_FLAG_LITTLE_ENDIAN = 1

#: Resolution (bits per axis) of the Hilbert curve used for the packing order.
_HILBERT_ORDER = 16
_HILBERT_SIDE = 1 << _HILBERT_ORDER


def hilbert_d(x: int, y: int, order: int = _HILBERT_ORDER) -> int:
    """Return the distance of integer cell ``(x, y)`` along a Hilbert curve.

    Standard iterative xy→d conversion; ``order`` bits per axis.  Used to sort
    entry centres into a cache-friendly, spatially local packing order.
    """
    rx = ry = 0
    d = 0
    s = 1 << (order - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


class PackedRTree:
    """An immutable Hilbert-packed R-tree over ``(Rect, item)`` entries.

    Build it with :meth:`bulk_load`; the constructor is internal.  All
    coordinate data lives in flat ``array('d')`` columns and all tree topology
    in flat integer arrays, indexed by node id.  Node ids ``< num_leaves`` are
    leaves; the root is the last node.
    """

    supports_updates = False

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 4:
            raise SpatialIndexError("max_entries must be >= 4")
        self.max_entries = max_entries
        # Entry columns (structure of arrays), in Hilbert order.
        self._ex0 = array("d")
        self._ey0 = array("d")
        self._ex1 = array("d")
        self._ey1 = array("d")
        self._items: list[object] = []
        # Node columns.  For a leaf node, children are entries and
        # (child_first, child_count) index the entry columns; for an internal
        # node they index the node columns.  (entry_start, entry_end) always
        # delimit the contiguous entry range the node's subtree covers.
        self._nx0 = array("d")
        self._ny0 = array("d")
        self._nx1 = array("d")
        self._ny1 = array("d")
        self._child_first = array("q")
        self._child_count = array("q")
        self._entry_start = array("q")
        self._entry_end = array("q")
        self._num_leaves = 0
        self._height = 0
        # Query mirrors: plain-list snapshots of the columns above, built once
        # at pack time.  ``array('d')`` is the compact canonical store, but
        # CPython boxes a fresh float on every array subscript; list subscripts
        # return the pre-boxed objects, which is what the hot traversal wants.
        self._q_nodes: tuple[list, ...] = ([], [], [], [])
        self._q_entries: tuple[list, ...] = ([], [], [], [])
        self._q_topology: tuple[list, ...] = ([], [], [], [])

    # ------------------------------------------------------------------ build

    @classmethod
    def bulk_load(
        cls, entries: Iterable[tuple[Rect, object]], max_entries: int = 32
    ) -> "PackedRTree":
        """Pack ``entries`` into a static tree in one bottom-up pass."""
        tree = cls(max_entries=max_entries)
        pairs = list(entries)
        if not pairs:
            return tree

        # Global bounds for the Hilbert cell mapping.
        min_x = min_y = float("inf")
        max_x = max_y = float("-inf")
        for rect, _ in pairs:
            if rect.min_x < min_x:
                min_x = rect.min_x
            if rect.min_y < min_y:
                min_y = rect.min_y
            if rect.max_x > max_x:
                max_x = rect.max_x
            if rect.max_y > max_y:
                max_y = rect.max_y
        span_x = max_x - min_x
        span_y = max_y - min_y
        scale_x = (_HILBERT_SIDE - 1) / span_x if span_x > 0 else 0.0
        scale_y = (_HILBERT_SIDE - 1) / span_y if span_y > 0 else 0.0

        def sort_key(pair: tuple[Rect, object]) -> int:
            rect = pair[0]
            cx = int(((rect.min_x + rect.max_x) * 0.5 - min_x) * scale_x)
            cy = int(((rect.min_y + rect.max_y) * 0.5 - min_y) * scale_y)
            return hilbert_d(cx, cy)

        pairs.sort(key=sort_key)

        ex0, ey0, ex1, ey1 = tree._ex0, tree._ey0, tree._ex1, tree._ey1
        for rect, item in pairs:
            ex0.append(rect.min_x)
            ey0.append(rect.min_y)
            ex1.append(rect.max_x)
            ey1.append(rect.max_y)
            tree._items.append(item)

        tree._pack_nodes()
        return tree

    def _pack_nodes(self) -> None:
        """Build the node columns bottom-up over the global entry order."""
        capacity = self.max_entries
        count = len(self._items)
        nx0, ny0, nx1, ny1 = self._nx0, self._ny0, self._nx1, self._ny1
        child_first, child_count = self._child_first, self._child_count
        entry_start, entry_end = self._entry_start, self._entry_end
        ex0, ey0, ex1, ey1 = self._ex0, self._ey0, self._ex1, self._ey1

        # Leaf level: consecutive runs of ``capacity`` entries.
        for start in range(0, count, capacity):
            end = min(start + capacity, count)
            bx0 = min(ex0[start:end])
            by0 = min(ey0[start:end])
            bx1 = max(ex1[start:end])
            by1 = max(ey1[start:end])
            nx0.append(bx0)
            ny0.append(by0)
            nx1.append(bx1)
            ny1.append(by1)
            child_first.append(start)
            child_count.append(end - start)
            entry_start.append(start)
            entry_end.append(end)
        self._num_leaves = len(nx0)
        self._height = 1

        # Upper levels: consecutive runs of ``capacity`` nodes of the level
        # below, until a single root remains.  Contiguity of the entry range is
        # preserved because lower-level nodes are never reordered.
        level_start = 0
        level_count = self._num_leaves
        while level_count > 1:
            next_start = len(nx0)
            for first in range(level_start, level_start + level_count, capacity):
                last = min(first + capacity, level_start + level_count)
                bx0 = min(nx0[first:last])
                by0 = min(ny0[first:last])
                bx1 = max(nx1[first:last])
                by1 = max(ny1[first:last])
                nx0.append(bx0)
                ny0.append(by0)
                nx1.append(bx1)
                ny1.append(by1)
                child_first.append(first)
                child_count.append(last - first)
                entry_start.append(entry_start[first])
                entry_end.append(entry_end[last - 1])
            level_start = next_start
            level_count = len(nx0) - next_start
            self._height += 1

        self._q_nodes = (nx0.tolist(), ny0.tolist(), nx1.tolist(), ny1.tolist())
        self._q_entries = (ex0.tolist(), ey0.tolist(), ex1.tolist(), ey1.tolist())
        self._q_topology = (
            child_first.tolist(),
            child_count.tolist(),
            entry_start.tolist(),
            entry_end.tolist(),
        )

    # ------------------------------------------------------------- persistence

    def to_bytes(self) -> bytes:
        """Serialise the tree into one flat, versioned page (see docs/persistence.md).

        The page is the versioned header followed by every structure-of-arrays
        column as its raw ``array.tobytes()`` buffer, in a fixed order:
        entry coordinates (x0, y0, x1, y1), items, node coordinates
        (x0, y0, x1, y1), then topology (child_first, child_count,
        entry_start, entry_end).  Items must be integers (the storage layer
        stores row ids); anything else raises :class:`SpatialIndexError`.
        """
        try:
            items = array("q", self._items)
        except (TypeError, ValueError, OverflowError) as exc:
            raise SpatialIndexError(
                "only trees whose items are 64-bit integers can be serialised"
            ) from exc
        flags = _FLAG_LITTLE_ENDIAN if sys.byteorder == "little" else 0
        body = b"".join((
            self._ex0.tobytes(),
            self._ey0.tobytes(),
            self._ex1.tobytes(),
            self._ey1.tobytes(),
            items.tobytes(),
            self._nx0.tobytes(),
            self._ny0.tobytes(),
            self._nx1.tobytes(),
            self._ny1.tobytes(),
            self._child_first.tobytes(),
            self._child_count.tobytes(),
            self._entry_start.tobytes(),
            self._entry_end.tobytes(),
        ))
        header = _PAGE_HEADER.pack(
            _PAGE_MAGIC,
            PACKED_PAGE_VERSION,
            flags,
            self.max_entries,
            len(self._items),
            len(self._nx0),
            self._num_leaves,
            self._height,
            zlib.crc32(body),
        )
        return header + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedRTree":
        """Reconstruct a tree from :meth:`to_bytes` output without re-packing.

        This is the zero-rebuild cold-start path: every column is restored
        with ``array.frombytes`` (an O(n) memory copy; byte-swapped when the
        page was written on a machine of the other endianness), and the
        query-mirror lists are rebuilt with ``tolist``.  Malformed input —
        wrong magic, unknown version, truncated or oversized payload,
        inconsistent counts — raises :class:`SpatialIndexError` so callers can
        fall back to rebuilding from rows.
        """
        if len(blob) < _PAGE_HEADER.size:
            raise SpatialIndexError("packed index page is truncated")
        (
            magic,
            version,
            flags,
            max_entries,
            num_entries,
            num_nodes,
            num_leaves,
            height,
            checksum,
        ) = _PAGE_HEADER.unpack_from(blob, 0)
        if magic != _PAGE_MAGIC:
            raise SpatialIndexError("not a packed index page (bad magic)")
        if version != PACKED_PAGE_VERSION:
            raise SpatialIndexError(
                f"unsupported packed index page version {version}"
            )
        if max_entries < 4:
            raise SpatialIndexError("packed index page has invalid max_entries")
        if num_leaves > num_nodes or (num_entries > 0) != (num_nodes > 0):
            raise SpatialIndexError("packed index page has inconsistent counts")
        expected = _PAGE_HEADER.size + 8 * (5 * num_entries + 8 * num_nodes)
        if len(blob) != expected:
            raise SpatialIndexError(
                f"packed index page has {len(blob)} bytes, expected {expected}"
            )
        if zlib.crc32(blob[_PAGE_HEADER.size:]) != checksum:
            raise SpatialIndexError("packed index page checksum mismatch")

        tree = cls(max_entries=max_entries)
        view = memoryview(blob)
        offset = _PAGE_HEADER.size
        swap = bool(flags & _FLAG_LITTLE_ENDIAN) != (sys.byteorder == "little")

        def take(column: array, count: int) -> array:
            nonlocal offset
            column.frombytes(view[offset:offset + 8 * count])
            offset += 8 * count
            if swap:
                column.byteswap()
            return column

        take(tree._ex0, num_entries)
        take(tree._ey0, num_entries)
        take(tree._ex1, num_entries)
        take(tree._ey1, num_entries)
        tree._items = take(array("q"), num_entries).tolist()
        take(tree._nx0, num_nodes)
        take(tree._ny0, num_nodes)
        take(tree._nx1, num_nodes)
        take(tree._ny1, num_nodes)
        take(tree._child_first, num_nodes)
        take(tree._child_count, num_nodes)
        take(tree._entry_start, num_nodes)
        take(tree._entry_end, num_nodes)
        tree._num_leaves = num_leaves
        tree._height = height

        # The checksum catches storage-level corruption; this O(num_nodes)
        # bounds check additionally guarantees that every traversal index the
        # query paths follow stays inside the restored columns, so a page a
        # checksum cannot vouch for (e.g. written by a buggy producer) fails
        # here instead of raising IndexError mid-query.
        child_first, child_count = tree._child_first, tree._child_count
        entry_start, entry_end = tree._entry_start, tree._entry_end
        for i in range(num_nodes):
            first = child_first[i]
            count = child_count[i]
            if count < 1 or count > max_entries or first < 0:
                raise SpatialIndexError(f"packed index page: node {i} fan-out invalid")
            limit = num_entries if i < num_leaves else i
            if first + count > limit:
                raise SpatialIndexError(
                    f"packed index page: node {i} children out of bounds"
                )
            if not 0 <= entry_start[i] <= entry_end[i] <= num_entries:
                raise SpatialIndexError(
                    f"packed index page: node {i} entry range invalid"
                )
        tree._q_nodes = (
            tree._nx0.tolist(),
            tree._ny0.tolist(),
            tree._nx1.tolist(),
            tree._ny1.tolist(),
        )
        tree._q_entries = (
            tree._ex0.tolist(),
            tree._ey0.tolist(),
            tree._ex1.tolist(),
            tree._ey1.tolist(),
        )
        tree._q_topology = (
            tree._child_first.tolist(),
            tree._child_count.tolist(),
            tree._entry_start.tolist(),
            tree._entry_end.tolist(),
        )
        return tree

    # ----------------------------------------------------------------- sizing

    def __len__(self) -> int:
        return len(self._items)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the index columns (canonical arrays + query mirrors).

        Entries cost 5 columns (4 coordinates + the item id) and nodes 8; the
        plain-list query mirrors duplicate every column as boxed objects, which
        the factor of 3 approximates (an 8-byte pointer plus a shared or
        per-slot float object).  Used by the dataset pool's memory-budget
        accounting, so it only needs to be proportional, not exact.
        """
        return 3 * 8 * (5 * len(self._items) + 8 * len(self._nx0))

    @property
    def bounds(self) -> Rect | None:
        """Bounding rectangle of the whole tree (``None`` when empty)."""
        if not self._items:
            return None
        root = len(self._nx0) - 1
        return Rect(self._nx0[root], self._ny0[root], self._nx1[root], self._ny1[root])

    # ------------------------------------------------------------- mutation --

    def insert(self, rect: Rect, item: object) -> None:
        """Unsupported: packed trees are immutable (rebuild or fall back)."""
        raise SpatialIndexError(
            "PackedRTree is immutable; rebuild it with bulk_load or fall back "
            "to the dynamic RTree for updates"
        )

    def delete(self, rect: Rect, item: object) -> bool:
        """Unsupported: packed trees are immutable (rebuild or fall back)."""
        raise SpatialIndexError(
            "PackedRTree is immutable; rebuild it with bulk_load or fall back "
            "to the dynamic RTree for updates"
        )

    # ----------------------------------------------------------------- queries

    def window_query(self, window: Rect) -> list[object]:
        """Return the items of every entry whose rectangle intersects ``window``."""
        out: list[object] = []
        if not self._items:
            return out
        self._collect(
            window.min_x, window.min_y, window.max_x, window.max_y, out
        )
        return out

    def window_query_batch(self, windows: Iterable[Rect]) -> list[list[object]]:
        """Evaluate many windows in one call (the prefetcher's entry point).

        Results are returned in input order; each list is identical to what
        :meth:`window_query` would return for that window.
        """
        if not self._items:
            return [[] for _ in windows]
        results: list[list[object]] = []
        for window in windows:
            out: list[object] = []
            self._collect(window.min_x, window.min_y, window.max_x, window.max_y, out)
            results.append(out)
        return results

    def _collect(
        self, qx0: float, qy0: float, qx1: float, qy1: float, out: list[object]
    ) -> None:
        """Append every item intersecting the query box to ``out`` (iterative)."""
        nx0, ny0, nx1, ny1 = self._q_nodes
        ex0, ey0, ex1, ey1 = self._q_entries
        child_first, child_count, entry_start, entry_end = self._q_topology
        items = self._items
        num_leaves = self._num_leaves
        stack = [len(nx0) - 1]
        pop = stack.pop
        extend = out.extend
        while stack:
            i = pop()
            bx0 = nx0[i]
            if bx0 > qx1:
                continue
            bx1 = nx1[i]
            if bx1 < qx0:
                continue
            by0 = ny0[i]
            if by0 > qy1:
                continue
            by1 = ny1[i]
            if by1 < qy0:
                continue
            if qx0 <= bx0 and qy0 <= by0 and bx1 <= qx1 and by1 <= qy1:
                # Whole subtree inside the window: slice the contiguous range.
                extend(items[entry_start[i]:entry_end[i]])
                continue
            first = child_first[i]
            last = first + child_count[i]
            if i < num_leaves:
                extend([
                    items[j]
                    for j in range(first, last)
                    if ex0[j] <= qx1
                    and ex1[j] >= qx0
                    and ey0[j] <= qy1
                    and ey1[j] >= qy0
                ])
            else:
                stack.extend(range(first, last))

    def count_window(self, window: Rect) -> int:
        """Return the number of entries intersecting ``window``."""
        if not self._items:
            return 0
        qx0, qy0, qx1, qy1 = window.min_x, window.min_y, window.max_x, window.max_y
        nx0, ny0, nx1, ny1 = self._q_nodes
        ex0, ey0, ex1, ey1 = self._q_entries
        child_first, child_count, entry_start, entry_end = self._q_topology
        num_leaves = self._num_leaves
        count = 0
        stack = [len(nx0) - 1]
        while stack:
            i = stack.pop()
            if nx0[i] > qx1 or nx1[i] < qx0 or ny0[i] > qy1 or ny1[i] < qy0:
                continue
            if (
                qx0 <= nx0[i]
                and qy0 <= ny0[i]
                and nx1[i] <= qx1
                and ny1[i] <= qy1
            ):
                count += entry_end[i] - entry_start[i]
                continue
            first = child_first[i]
            last = first + child_count[i]
            if i < num_leaves:
                count += sum(
                    1
                    for j in range(first, last)
                    if ex0[j] <= qx1
                    and ex1[j] >= qx0
                    and ey0[j] <= qy1
                    and ey1[j] >= qy0
                )
            else:
                stack.extend(range(first, last))
        return count

    def point_query(self, point: Point) -> list[object]:
        """Return items whose rectangle contains ``point``."""
        out: list[object] = []
        if not self._items:
            return out
        self._collect(point.x, point.y, point.x, point.y, out)
        return out

    def nearest(self, point: Point, k: int = 1) -> list[object]:
        """Return the ``k`` entries nearest to ``point`` (best-first search)."""
        if k <= 0 or not self._items:
            return []
        px, py = point.x, point.y
        nx0, ny0, nx1, ny1 = self._nx0, self._ny0, self._nx1, self._ny1
        ex0, ey0, ex1, ey1 = self._ex0, self._ey0, self._ex1, self._ey1
        child_first, child_count = self._child_first, self._child_count
        num_leaves = self._num_leaves
        items = self._items

        def box_dist2(bx0: float, by0: float, bx1: float, by1: float) -> float:
            dx = bx0 - px if px < bx0 else (px - bx1 if px > bx1 else 0.0)
            dy = by0 - py if py < by0 else (py - by1 if py > by1 else 0.0)
            return dx * dx + dy * dy

        counter = 0
        root = len(nx0) - 1
        # Heap entries: (squared distance, tiebreak, is_entry, index).
        heap: list[tuple[float, int, bool, int]] = [
            (box_dist2(nx0[root], ny0[root], nx1[root], ny1[root]), counter, False, root)
        ]
        results: list[object] = []
        while heap and len(results) < k:
            _, __, is_entry, index = heapq.heappop(heap)
            if is_entry:
                results.append(items[index])
                continue
            first = child_first[index]
            if index < num_leaves:
                for j in range(first, first + child_count[index]):
                    counter += 1
                    heapq.heappush(
                        heap,
                        (box_dist2(ex0[j], ey0[j], ex1[j], ey1[j]), counter, True, j),
                    )
            else:
                for j in range(first, first + child_count[index]):
                    counter += 1
                    heapq.heappush(
                        heap,
                        (box_dist2(nx0[j], ny0[j], nx1[j], ny1[j]), counter, False, j),
                    )
        return results

    def all_items(self) -> Iterator[object]:
        """Yield every stored item (packing order)."""
        return iter(self._items)

    # --------------------------------------------------------------- structure

    def stats(self) -> RTreeStats:
        """Return structural statistics (same shape as the dynamic tree's)."""
        return RTreeStats(
            height=self._height,
            num_nodes=len(self._nx0),
            num_leaves=self._num_leaves,
            num_entries=len(self._items),
            max_entries=self.max_entries,
        )

    def check_invariants(self) -> None:
        """Validate packing invariants; raises :class:`SpatialIndexError`."""
        count = len(self._items)
        if count == 0:
            if len(self._nx0) != 0:
                raise SpatialIndexError("empty packed tree has nodes")
            return
        for i in range(len(self._nx0)):
            first = self._child_first[i]
            number = self._child_count[i]
            if number < 1 or number > self.max_entries:
                raise SpatialIndexError(f"node {i} has {number} children")
            if i < self._num_leaves:
                if (self._entry_start[i], self._entry_end[i]) != (first, first + number):
                    raise SpatialIndexError(f"leaf {i} entry range mismatch")
                for j in range(first, first + number):
                    if (
                        self._ex0[j] < self._nx0[i]
                        or self._ey0[j] < self._ny0[i]
                        or self._ex1[j] > self._nx1[i]
                        or self._ey1[j] > self._ny1[i]
                    ):
                        raise SpatialIndexError(f"leaf {i} MBR does not cover entry {j}")
            else:
                if self._entry_start[i] != self._entry_start[first]:
                    raise SpatialIndexError(f"node {i} entry range start mismatch")
                if self._entry_end[i] != self._entry_end[first + number - 1]:
                    raise SpatialIndexError(f"node {i} entry range end mismatch")
                for j in range(first, first + number):
                    if (
                        self._nx0[j] < self._nx0[i]
                        or self._ny0[j] < self._ny0[i]
                        or self._nx1[j] > self._nx1[i]
                        or self._ny1[j] > self._ny1[i]
                    ):
                        raise SpatialIndexError(f"node {i} MBR does not cover child {j}")

"""Lock-cheap log-bucketed streaming latency histograms.

The serving path needs percentiles, not sample lists: a long-lived
``repro serve`` answering millions of queries cannot keep every latency in a
Python list (PR 8 retired exactly that leak in ``QueryLog``), and a cluster
router needs to *merge* per-worker distributions without shipping raw samples.

The classic answer is a fixed log-bucketed histogram (HdrHistogram /
Prometheus style): 64 buckets whose upper bounds grow geometrically, so a
``record`` is one ``log2`` + one list increment (O(1), no allocation), the
whole distribution is ~600 bytes, and two histograms merge by adding bucket
counts.  Percentile readout walks the cumulative counts and reports the
containing bucket's upper bound — exact to within one bucket width (~41%
relative, i.e. sub-half-order-of-magnitude), which is plenty for SLO work,
while ``max`` is tracked exactly.

Bucket scheme
-------------

* bucket 0 covers ``(0, 10µs]``;
* buckets 1..62 have upper bounds ``10µs · 2^(i/2)`` — two buckets per
  octave, each ~1.41× the previous, reaching ~21,000 s at bucket 62;
* bucket 63 is the overflow bucket (``+Inf``).

The scheme is value-agnostic (buckets are just a geometric grid), so the same
class records latencies in seconds *and* small counts such as proxy attempts.

Merging across the fleet rides the existing ``merge_summaries`` contract:
:meth:`Histogram.state` emits bucket counts as a *nested dict of ints*
(``{"7": 3, ...}``), which ``_merge_into`` sums key-wise, and names the
tracked maximum ``peak_seconds`` so the ``peak*`` max-merge rule applies.
Percentiles are **not** additive — after merging, recompute them from the
summed buckets with :func:`percentiles_from_state` (the router does this,
mirroring its coalescer-ratio recompute).
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "NUM_BUCKETS",
    "Histogram",
    "bucket_index",
    "bucket_upper_bound",
    "percentiles_from_state",
]

#: Fixed bucket count; the last bucket is the +Inf overflow bucket.
NUM_BUCKETS = 64

#: Upper bound of bucket 0 — 10 microseconds, below timer resolution anyway.
_MIN_BOUND = 1e-5

#: Buckets per factor-of-two: upper bounds grow by sqrt(2) per bucket.
_BUCKETS_PER_OCTAVE = 2

#: Tolerance so values sitting exactly on a bucket boundary land *in* that
#: bucket despite floating-point log jitter.
_BOUNDARY_EPS = 1e-9

#: The percentiles every summary reports.
_REPORTED = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def bucket_index(value: float) -> int:
    """The bucket a value falls in (upper-bound inclusive)."""
    if value <= _MIN_BOUND:
        return 0
    index = math.ceil(
        math.log2(value / _MIN_BOUND) * _BUCKETS_PER_OCTAVE - _BOUNDARY_EPS
    )
    return index if index < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of a bucket (``+Inf`` for the overflow bucket)."""
    if index >= NUM_BUCKETS - 1:
        return math.inf
    return _MIN_BOUND * 2.0 ** (index / _BUCKETS_PER_OCTAVE)


class Histogram:
    """A fixed-size streaming histogram: O(1) record, mergeable, tiny.

    Thread-safe; the lock guards a four-line critical section (one increment,
    two adds, one max), so contention is negligible even on hot paths.
    """

    __slots__ = ("_lock", "_buckets", "count", "total", "peak")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.peak = 0.0

    def record(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if value < 0.0:
            value = 0.0
        index = bucket_index(value)
        with self._lock:
            self._buckets[index] += 1
            self.count += 1
            self.total += value
            if value > self.peak:
                self.peak = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        with other._lock:
            buckets = list(other._buckets)
            count, total, peak = other.count, other.total, other.peak
        with self._lock:
            for index, increment in enumerate(buckets):
                self._buckets[index] += increment
            self.count += count
            self.total += total
            if peak > self.peak:
                self.peak = peak

    def percentile(self, quantile: float) -> float:
        """The q-quantile (0 < q <= 1), exact to one bucket width.

        Reports the upper bound of the bucket containing the target rank,
        clamped to the exact observed maximum (so p100 == max, and the
        overflow bucket never reports +Inf).
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {quantile}")
        with self._lock:
            buckets = list(self._buckets)
            count, peak = self.count, self.peak
        return _percentile(buckets, count, peak, quantile)

    def state(self) -> dict:
        """A JSON-safe, ``merge_summaries``-mergeable snapshot.

        Bucket counts are a nested dict of ints (summed key-wise by the
        merge), ``peak_seconds`` rides the ``peak*`` max-merge rule, and the
        attached percentiles are *this* histogram's — a consumer of merged
        states must recompute them via :func:`percentiles_from_state`.
        """
        with self._lock:
            buckets = list(self._buckets)
            count, total, peak = self.count, self.total, self.peak
        state: dict = {
            "count": count,
            "sum_seconds": total,
            "peak_seconds": peak,
            "buckets": {
                str(index): value for index, value in enumerate(buckets) if value
            },
        }
        for name, quantile in _REPORTED:
            state[name] = _percentile(buckets, count, peak, quantile)
        return state

    def clear(self) -> None:
        with self._lock:
            self._buckets = [0] * NUM_BUCKETS
            self.count = 0
            self.total = 0.0
            self.peak = 0.0

    def __len__(self) -> int:
        return self.count


def percentiles_from_state(state: dict) -> dict:
    """Recompute p50/p95/p99 from a (possibly merged) :meth:`Histogram.state`.

    After ``merge_summaries`` sums worker states, the embedded percentile
    fields are meaningless sums; call this to overwrite them from the summed
    buckets.  Returns the replacement fields.
    """
    buckets = [0] * NUM_BUCKETS
    for key, value in dict(state.get("buckets", {})).items():
        index = int(key)
        if 0 <= index < NUM_BUCKETS:
            buckets[index] += int(value)
    count = sum(buckets)
    peak = float(state.get("peak_seconds", 0.0))
    return {
        name: _percentile(buckets, count, peak, quantile)
        for name, quantile in _REPORTED
    }


def _percentile(buckets: list[int], count: int, peak: float, quantile: float) -> float:
    if count <= 0:
        return 0.0
    rank = max(1, math.ceil(quantile * count))
    cumulative = 0
    for index, value in enumerate(buckets):
        cumulative += value
        if cumulative >= rank:
            return min(bucket_upper_bound(index), peak)
    return peak  # pragma: no cover - rank <= count guarantees the loop hits

"""End-to-end request tracing: spans, trace context, and bounded trace stores.

A :class:`Trace` is one request's tree of :class:`Span` phases — queue wait,
coalesce, pool open, filter, JSON build, journal append/fsync, proxy hops,
retry backoff — each with wall time and outcome.  The trace id is 16 hex
characters, minted at the router (or honored from the client's
``X-GVDB-Trace-Id`` header) and propagated on every proxied hop, so one id
follows a request router → worker → write coordinator → journal, across
retries and failovers.

Context plumbing is ``contextvars``-based, which makes it both asyncio-safe
(each task sees its own trace) and thread-safe *when the context is carried
across the executor boundary* — the service frontend runs blocking work via
``contextvars.copy_context().run``, so spans opened on pool threads attach to
the right request.

Instrumentation is designed to cost one ``ContextVar.get`` when no trace is
active: :func:`span` and :func:`add_phase` no-op unless a trace has been
begun for the current context, so the hot path with tracing disabled pays
almost nothing (measured in ``benchmarks/test_bench_observability.py``).

Completed traces land in a :class:`TraceStore` — a bounded ring buffer keyed
by trace id (``GET /debug/trace/<id>``) plus a slow-query log retaining the
worst offenders above a threshold (``GET /debug/slow?n=``).
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
import uuid
from collections import OrderedDict

__all__ = [
    "Span",
    "Trace",
    "TraceStore",
    "active_thread_ops",
    "add_phase",
    "annotate",
    "begin_trace",
    "current_span",
    "current_trace",
    "current_trace_id",
    "end_trace",
    "new_trace_id",
    "span",
    "thread_op",
]

#: Wire header carrying the trace id (canonical casing for responses; request
#: parsing lowercases header names).
TRACE_HEADER_WIRE = "X-GVDB-Trace-Id"
TRACE_HEADER = TRACE_HEADER_WIRE.lower()

_HEX = set("0123456789abcdef")


class Span:
    """One timed phase of a request, with outcome, annotations and children."""

    __slots__ = ("name", "annotations", "children", "status", "duration_seconds",
                 "_started")

    def __init__(self, name: str, **annotations: object) -> None:
        self.name = name
        self.annotations = dict(annotations)
        self.children: list[Span] = []
        self.status = "ok"
        self.duration_seconds = 0.0
        self._started = time.perf_counter()

    def finish(self, status: str = "ok") -> None:
        self.duration_seconds = time.perf_counter() - self._started
        self.status = status

    def annotate(self, **annotations: object) -> None:
        self.annotations.update(annotations)

    def add_timed_child(self, name: str, seconds: float, **annotations: object) -> "Span":
        """Attach an already-measured phase (e.g. a timing the query layer
        reported) as a completed child span."""
        child = Span(name, **annotations)
        child.duration_seconds = max(0.0, float(seconds))
        self.children.append(child)
        return child

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_seconds * 1000.0, 3),
            "status": self.status,
            "annotations": dict(self.annotations),
            "children": [child.to_dict() for child in self.children],
        }


class Trace:
    """A request's span tree under one 16-hex trace id."""

    __slots__ = ("trace_id", "root")

    def __init__(self, trace_id: str | None = None, name: str = "request") -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root = Span(name)

    def finish(self, status: str = "ok") -> float:
        self.root.finish(status)
        return self.root.duration_seconds

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "duration_ms": round(self.root.duration_seconds * 1000.0, 3),
            "status": self.root.status,
            "root": self.root.to_dict(),
        }


# ------------------------------------------------------------ context plumbing

_current_trace: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "gvdb_trace", default=None
)
_current_span: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "gvdb_span", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex trace id."""
    return uuid.uuid4().hex[:16]


def sanitize_trace_id(raw: str | None) -> str | None:
    """A client-supplied trace id, or ``None`` if absent/unusable.

    Accepts 1–64 lowercase-hex characters (ids are case-folded); anything
    else is rejected so a hostile header cannot smuggle arbitrary bytes into
    debug endpoints or logs.
    """
    if not raw:
        return None
    candidate = raw.strip().lower()
    if 0 < len(candidate) <= 64 and set(candidate) <= _HEX:
        return candidate
    return None


def begin_trace(trace_id: str | None = None, name: str = "request") -> tuple[Trace, object]:
    """Start a trace for the current context; returns ``(trace, token)``.

    Pass the token to :func:`end_trace` (in a ``finally``) to restore the
    previous context — the same set/reset discipline the router uses for its
    deadline and staleness contextvars.
    """
    trace = Trace(trace_id=sanitize_trace_id(trace_id), name=name)
    token_trace = _current_trace.set(trace)
    token_span = _current_span.set(trace.root)
    return trace, (token_trace, token_span)


def end_trace(token: object) -> None:
    token_trace, token_span = token  # type: ignore[misc]
    _current_span.reset(token_span)
    _current_trace.reset(token_trace)


def current_trace() -> Trace | None:
    return _current_trace.get()


def current_trace_id() -> str | None:
    trace = _current_trace.get()
    return trace.trace_id if trace is not None else None


def current_span() -> Span | None:
    return _current_span.get()


# Thread → active-op registry for the sampling profiler.  Contextvars are the
# source of truth for *request* attribution, but a sampler thread cannot read
# another thread's context — so span() additionally records, per OS thread, a
# stack of open span names.  The sampler snapshots the innermost name to tag
# each sample (``repro.obs.profile``).  No lock: the GIL makes the individual
# dict/list operations atomic, and the snapshot tolerates concurrent pops.
_thread_ops: dict[int, list[str]] = {}


def _push_thread_op(name: str) -> None:
    ident = threading.get_ident()
    stack = _thread_ops.get(ident)
    if stack is None:
        stack = _thread_ops[ident] = []
    stack.append(name)


def _pop_thread_op(name: str) -> None:
    # Remove the first entry equal to ``name`` from the leaf end: spans on
    # one *worker* thread close LIFO, but async code interleaves differently-
    # named spans on the event-loop thread, so a blind pop could drop the
    # wrong name.
    ident = threading.get_ident()
    stack = _thread_ops.get(ident)
    if not stack:
        return
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == name:
            del stack[index]
            break
    if not stack:
        _thread_ops.pop(ident, None)


def active_thread_ops() -> dict[int, str]:
    """Snapshot of each thread's innermost open span name (profiler input)."""
    snapshot: dict[int, str] = {}
    for ident, stack in list(_thread_ops.items()):
        try:
            snapshot[ident] = stack[-1]
        except IndexError:  # emptied concurrently
            continue
    return snapshot


@contextlib.contextmanager
def thread_op(name: str):
    """Tag the current OS thread with an op name for the sampling profiler.

    :func:`span` tags the thread it runs on, but blocking work crosses the
    executor boundary: the event-loop thread holds the ``window`` span while
    a pool thread does the actual filtering, so a profiler sample of the pool
    thread would read ``-``.  Wrap the executor-side body in ``thread_op``
    (the service's ``_run`` adopts the submitting request's innermost span
    name; the coalescer tags batch evaluation as ``window.batch``) and the
    sample is attributed to the op that queued the work.  Pure profiler
    plumbing: no trace, span, or contextvar is touched.
    """
    _push_thread_op(name)
    try:
        yield
    finally:
        _pop_thread_op(name)


@contextlib.contextmanager
def span(name: str, **annotations: object):
    """Open a child span of the current span; a no-op without an active trace.

    Yields the :class:`Span` (or ``None`` when tracing is off).  The span's
    outcome is ``error`` if the body raises, ``ok`` otherwise.
    """
    parent = _current_span.get()
    if parent is None:
        yield None
        return
    child = Span(name, **annotations)
    parent.children.append(child)
    token = _current_span.set(child)
    _push_thread_op(name)
    try:
        yield child
    except BaseException:
        child.finish("error")
        raise
    else:
        child.finish("ok")
    finally:
        _pop_thread_op(name)
        _current_span.reset(token)


def add_phase(name: str, seconds: float, **annotations: object) -> None:
    """Attach an externally-timed phase to the current span (no-op untraced)."""
    parent = _current_span.get()
    if parent is not None:
        parent.add_timed_child(name, seconds, **annotations)


def annotate(**annotations: object) -> None:
    """Annotate the current span (no-op without an active trace)."""
    parent = _current_span.get()
    if parent is not None:
        parent.annotations.update(annotations)


# -------------------------------------------------------------- bounded stores


class TraceStore:
    """Bounded ring buffer of completed traces plus a slow-query log.

    The ring answers ``GET /debug/trace/<id>`` for any recent trace; the slow
    log keeps the ``slow_log_size`` *worst* traces at or above the threshold
    for ``GET /debug/slow?n=``.  Both are hard-bounded: a long-lived server
    holds at most ``ring_size + slow_log_size`` serialized trees.
    """

    def __init__(self, ring_size: int = 256, slow_threshold_seconds: float = 0.25,
                 slow_log_size: int = 64) -> None:
        self.ring_size = max(1, int(ring_size))
        self.slow_threshold_seconds = float(slow_threshold_seconds)
        self.slow_log_size = max(1, int(slow_log_size))
        self._lock = threading.Lock()
        self._ring: OrderedDict[str, dict] = OrderedDict()
        self._slow: list[dict] = []  # kept sorted ascending by duration

    def add(self, trace: Trace) -> dict:
        """Store a finished trace; returns its serialized form."""
        payload = trace.to_dict()
        seconds = trace.root.duration_seconds
        with self._lock:
            self._ring[payload["trace_id"]] = payload
            self._ring.move_to_end(payload["trace_id"])
            while len(self._ring) > self.ring_size:
                self._ring.popitem(last=False)
            if seconds >= self.slow_threshold_seconds:
                self._slow.append(payload)
                self._slow.sort(key=lambda entry: entry["duration_ms"])
                del self._slow[: max(0, len(self._slow) - self.slow_log_size)]
        return payload

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._ring.get(trace_id)

    def slowest(self, n: int = 10) -> list[dict]:
        """The worst offenders, slowest first."""
        bound = max(0, int(n))
        with self._lock:
            return list(reversed(self._slow[-bound:])) if bound else []

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

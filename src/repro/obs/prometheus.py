"""Prometheus text-exposition rendering for ``/metrics?format=prometheus``.

Maps a :meth:`ServiceMetrics.summary`-shaped dict (worker-local or
router-merged) onto the Prometheus text format, version 0.0.4:

* every metric carries a stable ``gvdb_`` prefix;
* monotonic counts get a ``_total`` suffix and ``counter`` type; keys starting
  with ``peak``/``last`` (high-water marks, not monotonic) and the coalescer
  ratio render as ``gauge``;
* only *bounded* label sets are emitted: ``dataset`` (served datasets),
  ``op`` (operation classes on the latency histogram family), and an optional
  caller-supplied base label set such as ``worker="w3"``;
* the ``latency`` section renders as one native histogram family,
  ``gvdb_latency_seconds``, with cumulative ``_bucket{le=...}`` counts
  derived from the log-bucket grid in :mod:`repro.obs.histogram`.

Sections are allowlisted rather than walked blindly: the summary also carries
free-form router/health state (worker addresses, generations, watermarks)
whose keys would mint unbounded metric names.  See the name table in
``docs/observability.md``.
"""

from __future__ import annotations

from .histogram import NUM_BUCKETS, bucket_upper_bound

__all__ = ["render_prometheus"]

#: Flat sections whose numeric leaves become ``gvdb_<section>_<key>`` metrics.
_FLAT_SECTIONS = ("coalescer", "pool", "cluster", "writes", "replication")

#: Keys rendered as gauges (resettable / high-water / derived values).
_GAUGE_KEYS = {"ratio"}


def _is_gauge(key: str) -> bool:
    return key in _GAUGE_KEYS or key.startswith("peak") or key.startswith("last")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(str(value))}"' for name, value in pairs.items())
    return "{" + body + "}"


def _number(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.9g}"


class _Family:
    """One metric family: a TYPE line plus its samples, emitted together."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: list[tuple[str, dict[str, str], object]] = []

    def add(self, suffix: str, labels: dict[str, str], value: object) -> None:
        self.samples.append((suffix, labels, value))

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            lines.append(f"{self.name}{suffix}{_labels(labels)} {_number(value)}")
        return lines


def render_prometheus(summary: dict, base_labels: dict[str, str] | None = None) -> str:
    """Render a metrics summary as Prometheus exposition text."""
    base = dict(base_labels or {})
    families: dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        existing = families.get(name)
        if existing is None:
            existing = families[name] = _Family(name, kind, help_text)
        return existing

    requests = summary.get("requests", {})
    if isinstance(requests, dict):
        for key in sorted(requests):
            value = requests[key]
            if key == "completed_by_dataset" and isinstance(value, dict):
                fam = family("gvdb_dataset_requests_total", "counter",
                             "Completed requests per dataset.")
                for dataset in sorted(value):
                    fam.add("", {**base, "dataset": dataset}, value[dataset])
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                family(f"gvdb_requests_{key}_total", "counter",
                       f"Requests {key} by the admission layer.").add("", base, value)

    queue_depth = summary.get("queue_depth", {})
    if isinstance(queue_depth, dict):
        fam = family("gvdb_queue_depth", "gauge", "In-flight requests per dataset.")
        for dataset in sorted(queue_depth):
            fam.add("", {**base, "dataset": dataset}, queue_depth[dataset])
    if "peak_queue_depth" in summary:
        family("gvdb_peak_queue_depth", "gauge",
               "High-water mark of per-dataset queue depth.").add(
            "", base, summary["peak_queue_depth"])
    if "repack_runs" in summary:
        family("gvdb_repack_runs_total", "counter",
               "Background repack maintenance runs.").add(
            "", base, summary["repack_runs"])

    for section in _FLAT_SECTIONS:
        payload = summary.get(section, {})
        if not isinstance(payload, dict):
            continue
        for key in sorted(payload):
            value = payload[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if _is_gauge(key):
                family(f"gvdb_{section}_{key}", "gauge",
                       f"{section} {key} (gauge).").add("", base, value)
            else:
                family(f"gvdb_{section}_{key}_total", "counter",
                       f"{section} {key} (monotonic).").add("", base, value)

    # SLO section (PR 9): nested per-op dicts, rendered with a bounded ``op``
    # label (same vocabulary as the latency family) instead of flattened
    # names.  Burn rates, budget remaining and alert level are windowed /
    # derived values — gauges; the good/bad/error tallies are counters.
    slo = summary.get("slo", {})
    if isinstance(slo, dict) and isinstance(slo.get("ops"), dict) and slo["ops"]:
        family("gvdb_slo_availability_target", "gauge",
               "Configured SLO availability target.").add(
            "", base, float(slo.get("availability_target", 0.0)))
        good = family("gvdb_slo_good_total", "counter",
                      "Requests meeting the op's SLO (ok and within target).")
        bad = family("gvdb_slo_bad_total", "counter",
                     "Requests consuming the op's error budget.")
        errors = family("gvdb_slo_error_responses_total", "counter",
                        "503/504 responses per operation class.")
        slow = family("gvdb_slo_slow_requests_total", "counter",
                      "Successful requests over the op's latency target.")
        burn = family("gvdb_slo_burn_rate", "gauge",
                      "Error-budget burn rate over the fast/slow window "
                      "(1.0 = budget consumed exactly as it renews).")
        remaining = family("gvdb_slo_budget_remaining_ratio", "gauge",
                           "Fraction of the slow-window error budget left.")
        alert = family("gvdb_slo_alert_level", "gauge",
                       "Burn-rate alert severity (0 ok, 1 warn, 2 page).")
        for op in sorted(slo["ops"]):
            entry = slo["ops"][op]
            if not isinstance(entry, dict):
                continue
            labels = {**base, "op": op}
            good.add("", labels, int(entry.get("good", 0)))
            bad.add("", labels, int(entry.get("bad", 0)))
            errors.add("", {**labels, "status": "503"},
                       int(entry.get("errors_503", 0)))
            errors.add("", {**labels, "status": "504"},
                       int(entry.get("errors_504", 0)))
            slow.add("", labels, int(entry.get("slow", 0)))
            burn.add("", {**labels, "window": "fast"},
                     float(entry.get("burn_fast", 0.0)))
            burn.add("", {**labels, "window": "slow"},
                     float(entry.get("burn_slow", 0.0)))
            remaining.add("", labels, float(entry.get("budget_remaining", 1.0)))
            alert.add("", labels, int(entry.get("alert_level", 0)))
    admission = slo.get("admission") if isinstance(slo, dict) else None
    if isinstance(admission, dict):
        for key in ("effective_limit", "max_limit", "min_limit"):
            if key in admission:
                family(f"gvdb_slo_admission_{key}", "gauge",
                       f"Adaptive admission {key.replace('_', ' ')}.").add(
                    "", base, int(admission[key]))
        for key in ("increases", "decreases"):
            if key in admission:
                family(f"gvdb_slo_admission_{key}_total", "counter",
                       f"Adaptive admission limit {key} (monotonic).").add(
                    "", base, int(admission[key]))

    # Resource accounting (PR 10): every ``*_bytes`` gauge in the ``memory``
    # section renders under one family with a bounded ``component`` label —
    # components are code-registered attribution sources (rss, pool, cache,
    # journal, ...), never request-derived strings.
    memory = summary.get("memory", {})
    if isinstance(memory, dict):
        byte_keys = [
            key for key in sorted(memory)
            if key.endswith("_bytes") and key != "peak_rss_bytes"
            and isinstance(memory[key], (int, float))
            and not isinstance(memory[key], bool)
        ]
        if byte_keys:
            fam = family("gvdb_memory_bytes", "gauge",
                         "Attributed resident bytes per component "
                         "(rss = whole process).")
            for key in byte_keys:
                fam.add("", {**base, "component": key[: -len("_bytes")]},
                        int(memory[key]))
        if isinstance(memory.get("peak_rss_bytes"), (int, float)):
            family("gvdb_memory_peak_rss_bytes", "gauge",
                   "High-water mark of sampled process RSS.").add(
                "", base, int(memory["peak_rss_bytes"]))
        if isinstance(memory.get("samples"), (int, float)):
            family("gvdb_memory_samples_total", "counter",
                   "Memory-sampler ticks (monotonic).").add(
                "", base, int(memory["samples"]))
    profile = summary.get("profile", {})
    if isinstance(profile, dict):
        if isinstance(profile.get("runs"), (int, float)):
            family("gvdb_profile_runs_total", "counter",
                   "Completed profile collections (monotonic).").add(
                "", base, int(profile["runs"]))
        if isinstance(profile.get("samples"), (int, float)):
            family("gvdb_profile_samples_total", "counter",
                   "Thread-stack samples taken by the profiler (monotonic).").add(
                "", base, int(profile["samples"]))

    latency = summary.get("latency", {})
    if isinstance(latency, dict) and latency:
        fam = family("gvdb_latency_seconds", "histogram",
                     "Request/phase latency distributions (log-bucketed).")
        peaks = family("gvdb_latency_peak_seconds", "gauge",
                       "Exact maximum observed latency per operation class.")
        for op in sorted(latency):
            state = latency[op]
            if not isinstance(state, dict):
                continue
            buckets = {int(k): int(v) for k, v in dict(state.get("buckets", {})).items()}
            cumulative = 0
            for index in range(NUM_BUCKETS):
                increment = buckets.get(index, 0)
                cumulative += increment
                if not increment and index != NUM_BUCKETS - 1:
                    continue
                bound = bucket_upper_bound(index)
                le = "+Inf" if bound == float("inf") else f"{bound:.9g}"
                fam.add("_bucket", {**base, "op": op, "le": le}, cumulative)
            fam.add("_sum", {**base, "op": op}, float(state.get("sum_seconds", 0.0)))
            fam.add("_count", {**base, "op": op}, int(state.get("count", 0)))
            peaks.add("", {**base, "op": op}, float(state.get("peak_seconds", 0.0)))

    lines: list[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + "\n"

"""Process-memory accounting: RSS sampling with component attribution (PR 10).

ROADMAP item 2 (shared-memory packed pages) promises "per-worker resident
bytes ≈ constant in worker count" — a claim nobody can verify until something
records per-worker resident bytes.  This module is that something: a
:class:`MemorySampler` periodically reads the process RSS (``/proc/self/status``
``VmRSS``, no third-party deps) and asks each registered *source* how many of
those bytes it can account for — the dataset pool's estimated resident sizes,
the router's result cache + stale archive, the write-ahead journals on disk.

Samples flow into ``ServiceMetrics`` as the ``memory`` section of
``/metrics``, chosen so the fleet merge is meaningful under the existing
``merge_summaries`` rules: plain byte gauges **sum** across workers (the
fleet's total footprint), ``peak_rss_bytes`` **maxes** (the worst single
process), and per-worker visibility comes from the ``worker`` label on
worker-local Prometheus scrapes.

The sampler tick also runs registered *refresh hooks* first — the dataset
pool re-estimates each open dataset's ``resident_bytes`` here, so the pool's
byte-budget eviction tracks post-edit reality instead of the size captured at
open time.

Allocation-site attribution (``tracemalloc``) is strictly opt-in
(``ObservabilityConfig.tracemalloc_enabled``): it costs real memory and CPU,
so it never runs unless asked, and ``GET /debug/memory`` reports it as
disabled rather than silently returning nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

__all__ = ["MemorySampler", "read_rss_bytes", "tracemalloc_top"]


def read_rss_bytes() -> int:
    """Current resident set size in bytes, without third-party dependencies.

    Linux: ``VmRSS`` from ``/proc/self/status``.  Elsewhere: fall back to
    ``resource.getrusage`` (``ru_maxrss`` — a high-water mark, not current,
    but monotone and better than nothing).  Returns 0 when neither works.
    """
    try:
        with open("/proc/self/status", "rb") as status:
            for line in status:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        return int(rss) if sys.platform == "darwin" else int(rss) * 1024
    except Exception:  # noqa: BLE001 - telemetry must never raise
        return 0


class MemorySampler:
    """Periodic RSS + component-attribution sampler.

    Parameters
    ----------
    interval_seconds:
        Background sampling period; ``start()`` spawns a daemon thread that
        calls :meth:`sample_once` on this cadence.
    sources:
        ``{component: callable() -> bytes}`` attribution sources (e.g.
        ``{"pool": pool.total_resident_bytes}``).  A failing source reports 0
        for that tick rather than killing the sampler.
    on_sample:
        Sink receiving each completed sample dict (``ServiceMetrics.
        record_memory_sample`` in production).
    rss_reader / clock:
        Injection points for tests.
    """

    def __init__(
        self,
        interval_seconds: float = 10.0,
        sources: Mapping[str, Callable[[], int]] | None = None,
        on_sample: Callable[[dict], None] | None = None,
        rss_reader: Callable[[], int] = read_rss_bytes,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.interval_seconds = float(interval_seconds)
        self._sources: dict[str, Callable[[], int]] = dict(sources or {})
        self._refresh_hooks: list[Callable[[], object]] = []
        self._on_sample = on_sample
        self._rss = rss_reader
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.last_sample: dict | None = None
        self.samples = 0

    # ------------------------------------------------------------ registration

    def add_source(self, component: str, reader: Callable[[], int]) -> None:
        """Register (or replace) a byte-attribution source."""
        with self._lock:
            self._sources[component] = reader

    def add_refresh_hook(self, hook: Callable[[], object]) -> None:
        """Register a callable run at the start of every tick, *before* the
        sources are read — the pool's resident-bytes re-estimation rides
        here so attribution reflects post-edit sizes."""
        with self._lock:
            if hook not in self._refresh_hooks:
                self._refresh_hooks.append(hook)

    # ----------------------------------------------------------------- sampling

    def sample_once(self) -> dict:
        """One tick: run refresh hooks, read RSS and every source, emit.

        Returns (and stores as :attr:`last_sample`) a flat dict of byte
        gauges: ``{"rss_bytes": ..., "<component>_bytes": ...}``.  Source and
        hook failures degrade to 0 / no-op — telemetry never takes the
        service down.
        """
        with self._lock:
            hooks = list(self._refresh_hooks)
            sources = list(self._sources.items())
        for hook in hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001
                pass
        sample: dict = {"rss_bytes": max(0, int(self._rss()))}
        for component, reader in sources:
            try:
                sample[f"{component}_bytes"] = max(0, int(reader()))
            except Exception:  # noqa: BLE001
                sample[f"{component}_bytes"] = 0
        with self._lock:
            self.last_sample = sample
            self.samples += 1
        if self._on_sample is not None:
            try:
                self._on_sample(sample)
            except Exception:  # noqa: BLE001
                pass
        return sample

    # ------------------------------------------------------------------- thread

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background sampling thread (idempotent); takes an
        immediate first sample so ``/metrics`` is populated from tick zero."""
        if self.running:
            return
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="gvdb-memory-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - the thread must survive
                pass


# ------------------------------------------------------------------ tracemalloc


def tracemalloc_top(n: int = 10) -> dict:
    """Top-``n`` allocation sites from ``tracemalloc``, if it is tracing.

    Returns ``{"enabled": False}`` when tracing is off (the opt-in knob is
    ``ObservabilityConfig.tracemalloc_enabled``); otherwise
    ``{"enabled": True, "traced_bytes": ..., "sites": [{"site", "size_bytes",
    "count"}, ...]}``.
    """
    import tracemalloc

    if not tracemalloc.is_tracing():
        return {"enabled": False}
    current, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    stats = snapshot.statistics("lineno")[: max(0, int(n))]
    return {
        "enabled": True,
        "traced_bytes": int(current),
        "traced_peak_bytes": int(peak),
        "sites": [
            {
                "site": f"{stat.traceback[0].filename}:{stat.traceback[0].lineno}",
                "size_bytes": int(stat.size),
                "count": int(stat.count),
            }
            for stat in stats
        ],
    }

"""Sampling wall-clock profiler with per-op attribution (PR 10).

The tracing layer answers *where did this request's time go*; this module
answers *where does the process's CPU go across requests*: a daemon thread
walks :func:`sys._current_frames` at a configurable rate and folds every
thread's Python stack into **collapsed-stack** form — the `flamegraph.pl` /
speedscope interchange format, one line per distinct stack::

    window;repro.service.frontend:_run_window;repro.storage.table:window_query 42

Each sample's first segment is the **op**: the innermost span name active on
the sampled thread at that instant, read from the thread→op registry the
trace machinery maintains (:func:`repro.obs.trace.active_thread_ops`).  A
sample taken while a worker thread is inside ``with span("filter")`` is
attributed to ``filter``; threads with no active span get ``-``.  That makes
fleet profiles directly comparable to the per-request span phases: the same
names key both.

Collapsed stacks are **mergeable by construction** — summing counts per stack
line is associative and commutative — so the router can fan
``GET /debug/profile`` out to every worker and add the dicts together
(:func:`merge_collapsed`), exactly like histogram bucket states ride
``merge_summaries``.

The profiler is sampling, not tracing: cost is ``hz × threads`` stack walks
per second regardless of request rate, and nothing is inserted into the
request path.  ``benchmarks/test_bench_observability.py`` measures the hot
window path with a profiler running vs not (< 3% target, same budget as the
PR 8 tracing overhead).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Callable, Mapping

from .trace import active_thread_ops

__all__ = [
    "IDLE_OP",
    "OVERFLOW_STACK",
    "SamplingProfiler",
    "collapse_frame",
    "format_collapsed",
    "merge_collapsed",
    "op_totals",
    "top_frames",
]

#: Op segment for threads with no active span (untraced / between requests).
IDLE_OP = "-"

#: Key that absorbs samples once ``max_stacks`` distinct stacks are retained.
OVERFLOW_STACK = f"{IDLE_OP};<overflow>"

#: Stacks deeper than this are truncated at the root end (the leaf frames are
#: the interesting part of a sample).
_MAX_DEPTH = 128


def _format_frame(frame) -> str:
    """``module:qualname`` for one frame — line numbers are deliberately left
    out so stacks stay stable across edits and merge across workers running
    the same code."""
    code = frame.f_code
    module = frame.f_globals.get("__name__") or code.co_filename
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{name}"


def collapse_frame(frame, op: str = IDLE_OP) -> str:
    """Fold one thread's live frame chain into a collapsed-stack key.

    Root-first order (flamegraph convention), prefixed with the op segment:
    ``op;root_frame;...;leaf_frame``.
    """
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < _MAX_DEPTH:
        parts.append(_format_frame(frame))
        frame = frame.f_back
        depth += 1
    parts.reverse()
    # The collapsed format is whitespace/semicolon-delimited; an op name
    # containing either (a root span like "worker GET /debug/slow") must not
    # corrupt the line grammar.
    clean = (op or IDLE_OP).replace(";", ":").replace(" ", "_")
    return ";".join([clean] + parts)


class SamplingProfiler:
    """Wall-clock sampler over ``sys._current_frames`` with op attribution.

    Parameters
    ----------
    default_hz:
        Sampling rate used when a collection does not specify one.  A prime
        default (97) avoids beating against second-aligned periodic work.
    max_stacks:
        Bound on distinct collapsed stacks retained per collection; further
        new stacks are absorbed into :data:`OVERFLOW_STACK` so one collection
        can never hold unbounded memory (the profiler's "ring size").
    clock / sleep / frames_provider / op_provider:
        Injection points for deterministic tests: a fake clock advanced by a
        fake sleep yields exactly ``seconds × hz`` samples of a fake frame
        table; production uses ``time.monotonic``/``time.sleep``/
        ``sys._current_frames``/``active_thread_ops``.
    """

    def __init__(
        self,
        default_hz: int = 97,
        max_stacks: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        frames_provider: Callable[[], Mapping[int, object]] = sys._current_frames,
        op_provider: Callable[[], Mapping[int, str]] = active_thread_ops,
    ) -> None:
        if default_hz <= 0:
            raise ValueError("default_hz must be positive")
        if max_stacks <= 0:
            raise ValueError("max_stacks must be positive")
        self.default_hz = int(default_hz)
        self.max_stacks = int(max_stacks)
        self._clock = clock
        self._sleep = sleep
        self._frames = frames_provider
        self._ops = op_provider

    # ----------------------------------------------------------------- sampling

    def sample_into(self, counts: Counter, exclude: frozenset[int] = frozenset()) -> int:
        """Take one sample of every live thread into ``counts``.

        Returns the number of threads sampled.  ``exclude`` removes the
        sampler's own thread so the profiler never profiles itself.
        """
        ops = self._ops()
        sampled = 0
        for ident, frame in self._frames().items():
            if ident in exclude:
                continue
            key = collapse_frame(frame, ops.get(ident, IDLE_OP))
            if key not in counts and len(counts) >= self.max_stacks:
                key = OVERFLOW_STACK
            counts[key] += 1
            sampled += 1
        return sampled

    def _run(
        self,
        deadline: float,
        interval: float,
        counts: Counter,
        totals: Counter,
    ) -> None:
        while self._clock() < deadline:
            totals["samples"] += self.sample_into(
                counts, exclude=frozenset((threading.get_ident(),))
            )
            totals["ticks"] += 1
            self._sleep(interval)

    def collect(self, seconds: float, hz: int | None = None) -> dict:
        """Profile for ``seconds`` at ``hz`` and return the collapsed profile.

        Spawns a daemon sampler thread and joins it, so the caller (an HTTP
        executor thread, typically) is itself visible in the profile —
        blocked in ``join`` under whatever span it holds.  The result is
        JSON-ready::

            {"seconds": float, "hz": int, "ticks": int, "samples": int,
             "stacks": {collapsed_key: count}}
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        rate = int(hz) if hz else self.default_hz
        if rate <= 0:
            raise ValueError("hz must be positive")
        counts: Counter = Counter()
        totals: Counter = Counter()
        deadline = self._clock() + float(seconds)
        thread = threading.Thread(
            target=self._run,
            args=(deadline, 1.0 / rate, counts, totals),
            name="gvdb-profiler",
            daemon=True,
        )
        # Pure-Python bursts shorter than the GIL switch interval (5 ms by
        # default) are systematically invisible to an in-process sampler: the
        # sampler thread cannot take the GIL mid-burst, so by the time it
        # runs the burst is over and its frames are gone.  Drop the interval
        # for the collection window only (restored after), so sub-millisecond
        # phases — a coalesced batch evaluation, a JSON build — are sampled
        # in proportion to their cost.
        previous_switch = sys.getswitchinterval()
        try:
            sys.setswitchinterval(min(previous_switch, 0.0005))
            thread.start()
            thread.join()
        finally:
            sys.setswitchinterval(previous_switch)
        return {
            "seconds": float(seconds),
            "hz": rate,
            "ticks": int(totals["ticks"]),
            "samples": int(totals["samples"]),
            "stacks": dict(counts),
        }


# ------------------------------------------------------------------- merging


def merge_collapsed(profiles: "list[Mapping[str, int]]") -> dict:
    """Sum collapsed-stack dicts key-wise (associative and commutative)."""
    merged: Counter = Counter()
    for stacks in profiles:
        merged.update(stacks)
    return dict(merged)


def format_collapsed(stacks: Mapping[str, int]) -> str:
    """Render a ``.collapsed`` file body: ``stack count`` per line, sorted by
    count descending then key (deterministic for identical inputs)."""
    ordered = sorted(stacks.items(), key=lambda item: (-item[1], item[0]))
    return "".join(f"{key} {count}\n" for key, count in ordered)


def op_totals(stacks: Mapping[str, int]) -> dict:
    """Samples per op segment (the attribution summary)."""
    totals: Counter = Counter()
    for key, count in stacks.items():
        totals[key.split(";", 1)[0]] += count
    return dict(totals)


def top_frames(stacks: Mapping[str, int], n: int = 20) -> list[dict]:
    """The hottest frames: per-frame *self* (leaf) and *total* (anywhere on
    the stack, counted once per sample) sample counts, self-first."""
    self_counts: Counter = Counter()
    total_counts: Counter = Counter()
    for key, count in stacks.items():
        frames = key.split(";")[1:]
        if not frames:
            continue
        self_counts[frames[-1]] += count
        for frame in set(frames):
            total_counts[frame] += count
    ordered = sorted(
        total_counts,
        key=lambda frame: (-self_counts[frame], -total_counts[frame], frame),
    )
    return [
        {
            "frame": frame,
            "self": self_counts[frame],
            "total": total_counts[frame],
        }
        for frame in ordered[: max(0, int(n))]
    ]

"""Observability layer: tracing, streaming histograms, Prometheus exposition.

Three pieces, threaded through every tier of the serving stack:

* :mod:`repro.obs.trace` — ``Trace``/``Span`` request tracing on a 16-hex id
  propagated via ``X-GVDB-Trace-Id``, with bounded ring-buffer and slow-log
  stores behind ``GET /debug/trace/<id>`` and ``GET /debug/slow``;
* :mod:`repro.obs.histogram` — lock-cheap log-bucketed latency histograms,
  mergeable across the fleet through ``merge_summaries``;
* :mod:`repro.obs.prometheus` — ``/metrics?format=prometheus`` text
  exposition with stable ``gvdb_*`` names.

See ``docs/observability.md`` for the span-phase catalog, bucket scheme and
metric name table.
"""

from .histogram import (
    NUM_BUCKETS,
    Histogram,
    bucket_index,
    bucket_upper_bound,
    percentiles_from_state,
)
from .trace import (
    TRACE_HEADER,
    TRACE_HEADER_WIRE,
    Span,
    Trace,
    TraceStore,
    add_phase,
    annotate,
    begin_trace,
    current_span,
    current_trace,
    current_trace_id,
    end_trace,
    new_trace_id,
    sanitize_trace_id,
    span,
)
from .prometheus import render_prometheus

__all__ = [
    "NUM_BUCKETS",
    "TRACE_HEADER",
    "TRACE_HEADER_WIRE",
    "Histogram",
    "Span",
    "Trace",
    "TraceStore",
    "add_phase",
    "annotate",
    "begin_trace",
    "bucket_index",
    "bucket_upper_bound",
    "current_span",
    "current_trace",
    "current_trace_id",
    "end_trace",
    "new_trace_id",
    "percentiles_from_state",
    "render_prometheus",
    "sanitize_trace_id",
    "span",
]

"""Observability layer: tracing, streaming histograms, Prometheus exposition.

Three pieces, threaded through every tier of the serving stack:

* :mod:`repro.obs.trace` — ``Trace``/``Span`` request tracing on a 16-hex id
  propagated via ``X-GVDB-Trace-Id``, with bounded ring-buffer and slow-log
  stores behind ``GET /debug/trace/<id>`` and ``GET /debug/slow``;
* :mod:`repro.obs.histogram` — lock-cheap log-bucketed latency histograms,
  mergeable across the fleet through ``merge_summaries``;
* :mod:`repro.obs.prometheus` — ``/metrics?format=prometheus`` text
  exposition with stable ``gvdb_*`` names;
* :mod:`repro.obs.profile` — sampling wall-clock profiler producing
  per-op-attributed collapsed stacks behind ``GET /debug/profile``;
* :mod:`repro.obs.memory` — periodic RSS + component attribution sampler
  feeding the ``memory`` metrics section and ``GET /debug/memory``.

See ``docs/observability.md`` for the span-phase catalog, bucket scheme and
metric name table.
"""

from .histogram import (
    NUM_BUCKETS,
    Histogram,
    bucket_index,
    bucket_upper_bound,
    percentiles_from_state,
)
from .memory import MemorySampler, read_rss_bytes, tracemalloc_top
from .profile import (
    IDLE_OP,
    SamplingProfiler,
    collapse_frame,
    format_collapsed,
    merge_collapsed,
    op_totals,
    top_frames,
)
from .trace import (
    TRACE_HEADER,
    TRACE_HEADER_WIRE,
    Span,
    Trace,
    TraceStore,
    active_thread_ops,
    add_phase,
    annotate,
    begin_trace,
    current_span,
    current_trace,
    current_trace_id,
    end_trace,
    new_trace_id,
    sanitize_trace_id,
    span,
    thread_op,
)
from .prometheus import render_prometheus

__all__ = [
    "IDLE_OP",
    "NUM_BUCKETS",
    "TRACE_HEADER",
    "TRACE_HEADER_WIRE",
    "Histogram",
    "MemorySampler",
    "SamplingProfiler",
    "Span",
    "Trace",
    "TraceStore",
    "active_thread_ops",
    "add_phase",
    "annotate",
    "begin_trace",
    "bucket_index",
    "bucket_upper_bound",
    "collapse_frame",
    "current_span",
    "current_trace",
    "current_trace_id",
    "end_trace",
    "format_collapsed",
    "merge_collapsed",
    "new_trace_id",
    "op_totals",
    "percentiles_from_state",
    "read_rss_bytes",
    "render_prometheus",
    "sanitize_trace_id",
    "span",
    "thread_op",
    "top_frames",
    "tracemalloc_top",
]

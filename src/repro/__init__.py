"""graphVizdb reproduction: a scalable platform for interactive large graph visualization.

The library reproduces the ICDE 2016 demo paper *graphVizdb* (Bikakis et al.):
an offline preprocessing pipeline that partitions a graph, lays out each
partition, arranges partitions on one Euclidean plane, builds abstraction
layers, and stores everything in spatially-indexed tables; plus an online query
engine that maps interactive exploration onto window queries.

Quickstart::

    from repro import GraphVizDBServer, GraphVizDBConfig
    from repro.graph import patent_like

    server = GraphVizDBServer(GraphVizDBConfig.small())
    server.load_dataset(patent_like(num_patents=500))
    session = server.create_session("patent-like")
    print(session.refresh().num_objects, "objects in the initial viewport")
"""

from .config import (
    AbstractionConfig,
    ClientConfig,
    ClusterConfig,
    GraphVizDBConfig,
    LayoutConfig,
    ObservabilityConfig,
    PartitionConfig,
    ServiceConfig,
    StorageConfig,
)
from .core.pipeline import PreprocessingPipeline, PreprocessingReport, PreprocessingResult
from .core.query_manager import QueryManager, WindowQueryResult
from .core.server import GraphVizDBServer
from .core.session import ExplorationSession
from .core.viewport import Viewport
from .errors import GraphVizDBError
from .graph.model import Edge, Graph, Node
from .service import DatasetPool, GraphVizDBService, ServiceRuntime
from .spatial.geometry import Point, Rect
from .storage.database import GraphVizDatabase

__version__ = "1.1.0"

__all__ = [
    "AbstractionConfig",
    "ClientConfig",
    "ClusterConfig",
    "GraphVizDBConfig",
    "LayoutConfig",
    "ObservabilityConfig",
    "PartitionConfig",
    "ServiceConfig",
    "StorageConfig",
    "DatasetPool",
    "GraphVizDBService",
    "ServiceRuntime",
    "PreprocessingPipeline",
    "PreprocessingReport",
    "PreprocessingResult",
    "QueryManager",
    "WindowQueryResult",
    "GraphVizDBServer",
    "ExplorationSession",
    "Viewport",
    "GraphVizDBError",
    "Edge",
    "Graph",
    "Node",
    "Point",
    "Rect",
    "GraphVizDatabase",
    "__version__",
]

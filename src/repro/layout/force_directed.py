"""Fruchterman–Reingold force-directed layout.

The default per-partition layout algorithm (the role Graphviz's ``sfdp``/``neato``
play in the original system).  Implemented with numpy so partitions of a few
thousand nodes lay out in well under a second; an optional Barnes-Hut-style grid
approximation keeps the repulsive-force computation sub-quadratic for larger
partitions.
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.model import Graph
from ..spatial.geometry import Point
from .base import Layout, LayoutAlgorithm

__all__ = ["ForceDirectedLayout"]


class ForceDirectedLayout(LayoutAlgorithm):
    """Fruchterman–Reingold spring-embedder layout.

    Parameters
    ----------
    iterations:
        Number of simulated-annealing iterations.
    area_per_node:
        Target drawing area per node; determines the ideal edge length ``k``.
    seed:
        Seed for the random initial placement.
    approximate_threshold:
        Above this node count the repulsive forces are computed only between
        nodes in neighbouring grid cells (a cell size of ``2k``), which trades a
        little quality for near-linear time.
    """

    name = "force_directed"

    def __init__(
        self,
        iterations: int = 50,
        area_per_node: float = 10_000.0,
        seed: int = 42,
        approximate_threshold: int = 1000,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = iterations
        self.area_per_node = area_per_node
        self.seed = seed
        self.approximate_threshold = approximate_threshold

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        node_ids = sorted(graph.node_ids())
        index_of = {node_id: index for index, node_id in enumerate(node_ids)}
        count = len(node_ids)

        if count == 1:
            return Layout({node_ids[0]: Point(0.0, 0.0)})

        area = self.area_per_node * count
        side = math.sqrt(area)
        k = math.sqrt(area / count)  # ideal pairwise distance

        rng = np.random.default_rng(self.seed)
        positions = rng.uniform(0.0, side, size=(count, 2))

        edges = np.array(
            [
                (index_of[edge.source], index_of[edge.target])
                for edge in graph.edges()
                if edge.source != edge.target
            ],
            dtype=np.int64,
        ).reshape(-1, 2)

        temperature = side / 10.0
        cooling = temperature / (self.iterations + 1)

        use_grid = count > self.approximate_threshold
        for _ in range(self.iterations):
            if use_grid:
                displacement = self._repulsion_grid(positions, k)
            else:
                displacement = self._repulsion_exact(positions, k)
            if len(edges):
                displacement += self._attraction(positions, edges, k, count)
            # Limit the displacement by the current temperature and cool down.
            lengths = np.linalg.norm(displacement, axis=1)
            lengths = np.maximum(lengths, 1e-9)
            capped = np.minimum(lengths, temperature)
            positions += displacement / lengths[:, None] * capped[:, None]
            temperature = max(temperature - cooling, 0.01)

        return Layout({
            node_id: Point(float(positions[index_of[node_id], 0]),
                           float(positions[index_of[node_id], 1]))
            for node_id in node_ids
        })

    @staticmethod
    def _repulsion_exact(positions: np.ndarray, k: float) -> np.ndarray:
        """All-pairs repulsive forces (O(n^2), exact)."""
        delta = positions[:, None, :] - positions[None, :, :]
        distance = np.linalg.norm(delta, axis=2)
        np.fill_diagonal(distance, np.inf)
        distance = np.maximum(distance, 1e-9)
        force = (k * k) / distance
        return (delta / distance[:, :, None] * force[:, :, None]).sum(axis=1)

    @staticmethod
    def _repulsion_grid(positions: np.ndarray, k: float) -> np.ndarray:
        """Grid-approximated repulsion: only nodes in neighbouring cells interact."""
        count = len(positions)
        displacement = np.zeros_like(positions)
        cell_size = 2.0 * k
        cells: dict[tuple[int, int], list[int]] = {}
        keys = (positions // cell_size).astype(np.int64)
        for index in range(count):
            cells.setdefault((int(keys[index, 0]), int(keys[index, 1])), []).append(index)
        for (cx, cy), members in cells.items():
            neighbours: list[int] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neighbours.extend(cells.get((cx + dx, cy + dy), ()))
            member_pos = positions[members]
            neighbour_pos = positions[neighbours]
            delta = member_pos[:, None, :] - neighbour_pos[None, :, :]
            distance = np.linalg.norm(delta, axis=2)
            distance = np.maximum(distance, 1e-9)
            force = (k * k) / distance
            # Zero out self-interaction (distance ~ 0 handled by the epsilon, but
            # the force would be enormous; mask exact self pairs instead).
            for row, member in enumerate(members):
                for col, neighbour in enumerate(neighbours):
                    if member == neighbour:
                        force[row, col] = 0.0
            displacement[members] += (
                delta / distance[:, :, None] * force[:, :, None]
            ).sum(axis=1)
        return displacement

    @staticmethod
    def _attraction(
        positions: np.ndarray, edges: np.ndarray, k: float, count: int
    ) -> np.ndarray:
        """Attractive forces along edges, accumulated per endpoint."""
        displacement = np.zeros((count, 2))
        source = edges[:, 0]
        target = edges[:, 1]
        delta = positions[source] - positions[target]
        distance = np.maximum(np.linalg.norm(delta, axis=1), 1e-9)
        force = (distance * distance) / k
        vector = delta / distance[:, None] * force[:, None]
        np.add.at(displacement, source, -vector)
        np.add.at(displacement, target, vector)
        return displacement

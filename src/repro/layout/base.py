"""Layout algorithm interface and the :class:`Layout` result type.

Preprocessing Step 2 "applies the layout algorithm to each partition
independently, and assigns coordinates to the nodes of each sub-graph".  The
paper emphasises that *any* layout algorithm can be plugged in ("circle, star,
hierarchical, etc."), so layouts are registered by name
(:mod:`repro.layout.registry`) and all share the :class:`LayoutAlgorithm`
interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import LayoutError
from ..graph.model import Graph
from ..spatial.geometry import Point, Rect

__all__ = ["Layout", "LayoutAlgorithm"]


@dataclass
class Layout:
    """Node coordinates for one graph (or one partition).

    Attributes
    ----------
    positions:
        Mapping ``node_id -> Point`` on the Euclidean plane.
    """

    positions: dict[int, Point] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.positions)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self.positions

    def position(self, node_id: int) -> Point:
        """Return the position of ``node_id``."""
        try:
            return self.positions[node_id]
        except KeyError:
            raise LayoutError(f"node {node_id} has no layout position") from None

    def set_position(self, node_id: int, point: Point) -> None:
        """Set the position of ``node_id``."""
        self.positions[node_id] = point

    def bounding_rect(self) -> Rect:
        """Return the bounding rectangle over all positions."""
        if not self.positions:
            raise LayoutError("cannot compute the bounding box of an empty layout")
        return Rect.from_points(self.positions.values())

    def translated(self, dx: float, dy: float) -> "Layout":
        """Return a copy shifted by ``(dx, dy)``.

        The organizer uses this to move a partition's local drawing to its
        assigned cell on the global plane ("the coordinates of its nodes are
        updated with respect to the assigned area").
        """
        return Layout({
            node_id: point.translated(dx, dy)
            for node_id, point in self.positions.items()
        })

    def scaled(self, factor: float, about: Point | None = None) -> "Layout":
        """Return a copy scaled by ``factor`` about ``about`` (default: bbox centre)."""
        if factor <= 0:
            raise LayoutError("scale factor must be positive")
        if not self.positions:
            return Layout({})
        origin = about or self.bounding_rect().center
        return Layout({
            node_id: Point(
                origin.x + (point.x - origin.x) * factor,
                origin.y + (point.y - origin.y) * factor,
            )
            for node_id, point in self.positions.items()
        })

    def merged_with(self, other: "Layout") -> "Layout":
        """Return the union of two layouts (``other`` wins on shared node ids)."""
        combined = dict(self.positions)
        combined.update(other.positions)
        return Layout(combined)

    def copy(self) -> "Layout":
        """Return a shallow copy (points are immutable)."""
        return Layout(dict(self.positions))


class LayoutAlgorithm(ABC):
    """Interface implemented by every layout algorithm."""

    #: Registry name; subclasses override.
    name = "base"

    @abstractmethod
    def layout(self, graph: Graph) -> Layout:
        """Compute positions for every node of ``graph``."""

    def _check_nonempty(self, graph: Graph) -> None:
        if graph.num_nodes == 0:
            raise LayoutError("cannot lay out an empty graph")

"""Hierarchical (layered, Sugiyama-style) layout.

Nodes are assigned to horizontal layers by longest-path ranking from the
sources, then ordered inside each layer by the barycentre of their neighbours in
the previous layer to reduce crossings.  This is the "hierarchical" option the
paper mentions for Step 2 and suits DAG-like inputs such as citation graphs.
"""

from __future__ import annotations

import math
from collections import deque

from ..graph.model import Graph
from ..spatial.geometry import Point
from .base import Layout, LayoutAlgorithm

__all__ = ["HierarchicalLayout"]


class HierarchicalLayout(LayoutAlgorithm):
    """Layered layout with barycentric crossing reduction.

    Parameters
    ----------
    layer_spacing / node_spacing:
        Vertical distance between layers and horizontal distance between
        adjacent nodes in a layer; both default to values derived from
        ``area_per_node`` so the drawing density matches the other layouts.
    ordering_passes:
        Number of barycentre ordering sweeps.
    """

    name = "hierarchical"

    def __init__(
        self,
        area_per_node: float = 10_000.0,
        ordering_passes: int = 3,
    ) -> None:
        self.area_per_node = area_per_node
        self.ordering_passes = ordering_passes

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        spacing = math.sqrt(self.area_per_node)
        ranks = self._assign_ranks(graph)
        layers = self._group_by_rank(ranks)
        layers = self._reduce_crossings(graph, layers)

        positions: dict[int, Point] = {}
        for rank, layer in enumerate(layers):
            width = (len(layer) - 1) * spacing
            for index, node_id in enumerate(layer):
                positions[node_id] = Point(index * spacing - width / 2.0, rank * spacing * 1.5)
        return Layout(positions)

    @staticmethod
    def _assign_ranks(graph: Graph) -> dict[int, int]:
        """Rank nodes by BFS depth from in-degree-0 sources (per component)."""
        ranks: dict[int, int] = {}
        sources = [
            node_id for node_id in sorted(graph.node_ids()) if graph.in_degree(node_id) == 0
        ]
        visited: set[int] = set()
        queue: deque[tuple[int, int]] = deque((source, 0) for source in sources)
        while queue:
            node_id, rank = queue.popleft()
            if node_id in visited:
                ranks[node_id] = max(ranks.get(node_id, 0), rank)
                continue
            visited.add(node_id)
            ranks[node_id] = max(ranks.get(node_id, 0), rank)
            for successor in sorted(graph.successors(node_id)):
                if successor not in visited:
                    queue.append((successor, rank + 1))
        # Nodes unreachable from any source (cycles, isolated nodes): BFS over the
        # undirected structure starting from already ranked nodes, else rank 0.
        for node_id in sorted(graph.node_ids()):
            if node_id not in ranks:
                neighbour_ranks = [
                    ranks[neighbour]
                    for neighbour in graph.neighbors(node_id)
                    if neighbour in ranks
                ]
                ranks[node_id] = (max(neighbour_ranks) + 1) if neighbour_ranks else 0
        return ranks

    @staticmethod
    def _group_by_rank(ranks: dict[int, int]) -> list[list[int]]:
        if not ranks:
            return []
        max_rank = max(ranks.values())
        layers: list[list[int]] = [[] for _ in range(max_rank + 1)]
        for node_id in sorted(ranks):
            layers[ranks[node_id]].append(node_id)
        return [layer for layer in layers if layer]

    def _reduce_crossings(self, graph: Graph, layers: list[list[int]]) -> list[list[int]]:
        """Reorder each layer by the barycentre of neighbours in the previous layer."""
        layers = [list(layer) for layer in layers]
        for _ in range(self.ordering_passes):
            for index in range(1, len(layers)):
                previous_order = {node_id: pos for pos, node_id in enumerate(layers[index - 1])}
                def barycentre(node_id: int) -> float:
                    neighbours = [
                        previous_order[neighbour]
                        for neighbour in graph.neighbors(node_id)
                        if neighbour in previous_order
                    ]
                    if not neighbours:
                        return float(len(previous_order)) / 2.0
                    return sum(neighbours) / len(neighbours)

                layers[index].sort(key=lambda node_id: (barycentre(node_id), node_id))
        return layers

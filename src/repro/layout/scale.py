"""Layout post-processing: normalisation, scaling and overlap removal.

These helpers keep per-partition drawings in a predictable coordinate envelope
before the organizer arranges them on the global plane, and provide quality
measures (edge-length statistics, node overlap counts) used by tests and the
ablation benchmarks.
"""

from __future__ import annotations

import math

from ..graph.model import Graph
from ..spatial.geometry import Point, Rect
from .base import Layout

__all__ = [
    "normalize_layout",
    "fit_to_area",
    "spread_coincident_nodes",
    "average_edge_length",
    "count_node_overlaps",
]


def normalize_layout(layout: Layout) -> Layout:
    """Translate the layout so its bounding box starts at the origin."""
    if not layout.positions:
        return Layout({})
    rect = layout.bounding_rect()
    return layout.translated(-rect.min_x, -rect.min_y)


def fit_to_area(layout: Layout, area_per_node: float) -> Layout:
    """Scale the layout so the plane area per node matches ``area_per_node``.

    Keeps partition drawings of different node counts at a comparable visual
    density, which is what makes window-query result sizes grow linearly with
    window area in Fig. 3.
    """
    if not layout.positions:
        return Layout({})
    count = len(layout.positions)
    target_side = math.sqrt(area_per_node * count)
    normalized = normalize_layout(layout)
    rect = normalized.bounding_rect()
    extent = max(rect.width, rect.height)
    if extent <= 0:
        # Degenerate layout (single node or coincident points): spread on a grid.
        normalized = spread_coincident_nodes(normalized, spacing=math.sqrt(area_per_node))
        rect = normalized.bounding_rect()
        extent = max(rect.width, rect.height, 1.0)
    factor = target_side / extent
    return normalize_layout(normalized.scaled(factor, about=Point(0.0, 0.0)))


def spread_coincident_nodes(layout: Layout, spacing: float = 10.0) -> Layout:
    """Displace nodes that share the exact same position onto a small grid.

    Force-directed layouts can leave isolated nodes stacked at the origin; a
    window query would then fetch an unreadable pile of objects.
    """
    seen: dict[tuple[float, float], int] = {}
    result: dict[int, Point] = {}
    for node_id in sorted(layout.positions):
        point = layout.positions[node_id]
        key = (round(point.x, 6), round(point.y, 6))
        occurrences = seen.get(key, 0)
        seen[key] = occurrences + 1
        if occurrences == 0:
            result[node_id] = point
        else:
            ring = int(math.sqrt(occurrences))
            angle = occurrences * 2.399963229728653  # golden angle spiral
            radius = spacing * (1 + ring)
            result[node_id] = Point(
                point.x + radius * math.cos(angle),
                point.y + radius * math.sin(angle),
            )
    return Layout(result)


def average_edge_length(graph: Graph, layout: Layout) -> float:
    """Return the mean Euclidean length of the graph's edges under ``layout``."""
    lengths = [
        layout.position(edge.source).distance_to(layout.position(edge.target))
        for edge in graph.edges()
    ]
    if not lengths:
        return 0.0
    return sum(lengths) / len(lengths)


def count_node_overlaps(layout: Layout, radius: float = 1.0) -> int:
    """Count node pairs closer than ``radius`` (cheap drawing-quality indicator).

    Uses a uniform grid so the check stays near-linear for large layouts.
    """
    if radius <= 0:
        return 0
    cell: dict[tuple[int, int], list[Point]] = {}
    overlaps = 0
    for node_id in sorted(layout.positions):
        point = layout.positions[node_id]
        cx = int(point.x // radius)
        cy = int(point.y // radius)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other in cell.get((cx + dx, cy + dy), ()):
                    if point.distance_to(other) < radius:
                        overlaps += 1
        cell.setdefault((cx, cy), []).append(point)
    return overlaps


def layout_bounds_with_padding(layout: Layout, padding: float) -> Rect:
    """Return the layout bounding box expanded by ``padding`` on every side."""
    return layout.bounding_rect().expanded(padding)

"""Grid and spectral layouts."""

from __future__ import annotations

import math

import numpy as np

from ..graph.model import Graph
from ..spatial.geometry import Point
from .base import Layout, LayoutAlgorithm

__all__ = ["GridLayout", "SpectralLayout"]


class GridLayout(LayoutAlgorithm):
    """Place nodes on a square lattice in BFS order.

    BFS order keeps neighbourhoods roughly contiguous, so even this trivially
    cheap layout produces locally meaningful drawings — useful when preprocessing
    very large partitions under a tight time budget.
    """

    name = "grid"

    def __init__(self, area_per_node: float = 10_000.0) -> None:
        self.area_per_node = area_per_node

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        from ..graph.traversal import bfs_order

        spacing = math.sqrt(self.area_per_node)
        remaining = set(graph.node_ids())
        ordered: list[int] = []
        while remaining:
            start = min(remaining)
            component = bfs_order(graph, start, directed=False)
            ordered.extend(node_id for node_id in component if node_id in remaining)
            remaining.difference_update(component)
        columns = max(1, math.ceil(math.sqrt(len(ordered))))
        positions = {}
        for index, node_id in enumerate(ordered):
            row, col = divmod(index, columns)
            positions[node_id] = Point(col * spacing, row * spacing)
        return Layout(positions)


class SpectralLayout(LayoutAlgorithm):
    """Spectral layout from the two smallest non-trivial Laplacian eigenvectors.

    Falls back to a grid layout for graphs that are too small or degenerate for
    an eigendecomposition to be meaningful.
    """

    name = "spectral"

    def __init__(self, area_per_node: float = 10_000.0) -> None:
        self.area_per_node = area_per_node

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        node_ids = sorted(graph.node_ids())
        count = len(node_ids)
        if count < 3:
            return GridLayout(self.area_per_node).layout(graph)
        index_of = {node_id: index for index, node_id in enumerate(node_ids)}

        laplacian = np.zeros((count, count))
        for edge in graph.edges():
            if edge.source == edge.target:
                continue
            i = index_of[edge.source]
            j = index_of[edge.target]
            laplacian[i, j] -= 1.0
            laplacian[j, i] -= 1.0
            laplacian[i, i] += 1.0
            laplacian[j, j] += 1.0

        try:
            eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        except np.linalg.LinAlgError:
            return GridLayout(self.area_per_node).layout(graph)

        # Skip (near-)zero eigenvalues: one per connected component.
        tolerance = 1e-9
        usable = [i for i, value in enumerate(eigenvalues) if value > tolerance]
        if len(usable) < 2:
            return GridLayout(self.area_per_node).layout(graph)
        x = eigenvectors[:, usable[0]]
        y = eigenvectors[:, usable[1]]

        # Scale to the requested density.
        side = math.sqrt(self.area_per_node * count)
        x_span = float(x.max() - x.min()) or 1.0
        y_span = float(y.max() - y.min()) or 1.0
        positions = {
            node_id: Point(
                float((x[index_of[node_id]] - x.min()) / x_span * side),
                float((y[index_of[node_id]] - y.min()) / y_span * side),
            )
            for node_id in node_ids
        }
        return Layout(positions)

"""Circular, star and random layouts.

The paper lists "circle, star, hierarchical, etc." as examples of layouts that
can be plugged into Step 2.  These simple deterministic layouts are also handy
in tests because their geometry is predictable.
"""

from __future__ import annotations

import math
import random

from ..graph.model import Graph
from ..spatial.geometry import Point
from .base import Layout, LayoutAlgorithm

__all__ = ["CircularLayout", "StarLayout", "RandomLayout"]


class CircularLayout(LayoutAlgorithm):
    """Place nodes evenly on a circle (node id order)."""

    name = "circular"

    def __init__(self, area_per_node: float = 10_000.0) -> None:
        self.area_per_node = area_per_node

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        node_ids = sorted(graph.node_ids())
        count = len(node_ids)
        if count == 1:
            return Layout({node_ids[0]: Point(0.0, 0.0)})
        # Choose the radius so the average spacing between adjacent nodes on the
        # circle roughly matches the requested density.
        spacing = math.sqrt(self.area_per_node)
        radius = max(spacing * count / (2.0 * math.pi), spacing)
        positions = {}
        for index, node_id in enumerate(node_ids):
            angle = 2.0 * math.pi * index / count
            positions[node_id] = Point(radius * math.cos(angle), radius * math.sin(angle))
        return Layout(positions)


class StarLayout(LayoutAlgorithm):
    """Place the highest-degree node at the centre and the rest on a circle."""

    name = "star"

    def __init__(self, area_per_node: float = 10_000.0) -> None:
        self.area_per_node = area_per_node

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        node_ids = sorted(graph.node_ids())
        if len(node_ids) == 1:
            return Layout({node_ids[0]: Point(0.0, 0.0)})
        center = max(node_ids, key=lambda node_id: (graph.degree(node_id), -node_id))
        ring = [node_id for node_id in node_ids if node_id != center]
        spacing = math.sqrt(self.area_per_node)
        radius = max(spacing * len(ring) / (2.0 * math.pi), spacing)
        positions = {center: Point(0.0, 0.0)}
        for index, node_id in enumerate(ring):
            angle = 2.0 * math.pi * index / len(ring)
            positions[node_id] = Point(radius * math.cos(angle), radius * math.sin(angle))
        return Layout(positions)


class RandomLayout(LayoutAlgorithm):
    """Place nodes uniformly at random in a square (baseline / initialisation)."""

    name = "random"

    def __init__(self, area_per_node: float = 10_000.0, seed: int = 42) -> None:
        self.area_per_node = area_per_node
        self.seed = seed

    def layout(self, graph: Graph) -> Layout:
        self._check_nonempty(graph)
        node_ids = sorted(graph.node_ids())
        side = math.sqrt(self.area_per_node * len(node_ids))
        rng = random.Random(self.seed)
        return Layout({
            node_id: Point(rng.uniform(0.0, side), rng.uniform(0.0, side))
            for node_id in node_ids
        })

"""Layout algorithm registry.

The pipeline selects the per-partition layout by name (``LayoutConfig.algorithm``),
mirroring the paper's claim that "any layout algorithm can be used in this step,
e.g., circle, star, hierarchical, etc.".  Downstream code should only go through
:func:`create_layout` / :func:`available_layouts` so new algorithms can be added
by registration alone.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnknownLayoutError
from .base import LayoutAlgorithm
from .circular import CircularLayout, RandomLayout, StarLayout
from .force_directed import ForceDirectedLayout
from .grid import GridLayout, SpectralLayout
from .hierarchical import HierarchicalLayout

__all__ = ["register_layout", "create_layout", "available_layouts"]

#: name -> factory(iterations, area_per_node, seed) -> LayoutAlgorithm
_REGISTRY: dict[str, Callable[[int, float, int], LayoutAlgorithm]] = {}


def register_layout(
    name: str, factory: Callable[[int, float, int], LayoutAlgorithm]
) -> None:
    """Register a layout factory under ``name`` (overwrites existing entries).

    The factory receives ``(iterations, area_per_node, seed)`` and must return a
    ready-to-use :class:`LayoutAlgorithm`.
    """
    _REGISTRY[name.lower()] = factory


def available_layouts() -> list[str]:
    """Return the sorted list of registered layout names."""
    return sorted(_REGISTRY)


def create_layout(
    name: str,
    iterations: int = 50,
    area_per_node: float = 10_000.0,
    seed: int = 42,
) -> LayoutAlgorithm:
    """Instantiate the layout algorithm registered under ``name``."""
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise UnknownLayoutError(name, available_layouts())
    return factory(iterations, area_per_node, seed)


# ---------------------------------------------------------------------------
# Built-in registrations.
# ---------------------------------------------------------------------------

register_layout(
    "force_directed",
    lambda iterations, area, seed: ForceDirectedLayout(
        iterations=iterations, area_per_node=area, seed=seed
    ),
)
register_layout(
    "circular", lambda iterations, area, seed: CircularLayout(area_per_node=area)
)
register_layout(
    "star", lambda iterations, area, seed: StarLayout(area_per_node=area)
)
register_layout(
    "random", lambda iterations, area, seed: RandomLayout(area_per_node=area, seed=seed)
)
register_layout(
    "grid", lambda iterations, area, seed: GridLayout(area_per_node=area)
)
register_layout(
    "spectral", lambda iterations, area, seed: SpectralLayout(area_per_node=area)
)
register_layout(
    "hierarchical",
    lambda iterations, area, seed: HierarchicalLayout(area_per_node=area),
)

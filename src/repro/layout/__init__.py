"""Layout substrate: per-partition layout algorithms (Graphviz stand-in)."""

from .base import Layout, LayoutAlgorithm
from .circular import CircularLayout, RandomLayout, StarLayout
from .force_directed import ForceDirectedLayout
from .grid import GridLayout, SpectralLayout
from .hierarchical import HierarchicalLayout
from .registry import available_layouts, create_layout, register_layout
from .scale import (
    average_edge_length,
    count_node_overlaps,
    fit_to_area,
    normalize_layout,
    spread_coincident_nodes,
)

__all__ = [
    "Layout",
    "LayoutAlgorithm",
    "CircularLayout",
    "RandomLayout",
    "StarLayout",
    "ForceDirectedLayout",
    "GridLayout",
    "SpectralLayout",
    "HierarchicalLayout",
    "available_layouts",
    "create_layout",
    "register_layout",
    "average_edge_length",
    "count_node_overlaps",
    "fit_to_area",
    "normalize_layout",
    "spread_coincident_nodes",
]

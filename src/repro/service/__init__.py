"""Concurrent serving subsystem.

The paper's graphVizdb is a *server*: "a number of real-world datasets" is
offered to interactive clients.  This package turns the library's synchronous
single-caller façade into that server:

* :mod:`repro.service.frontend` — an asyncio front-end that accepts
  window / kNN / keyword / session requests, runs the blocking query work on a
  bounded thread pool, and applies per-dataset admission control (queue-depth
  limit with an explicit :class:`~repro.errors.ServiceOverloadedError`);
* :mod:`repro.service.coalescer` — gathers concurrent window queries on the
  same (dataset, layer) inside a small time/size window and dispatches them
  through the batched index entry point, fanning results back to callers;
* :mod:`repro.service.pool` — an LRU pool of open
  :class:`~repro.storage.database.GraphVizDatabase` instances keyed by SQLite
  path, so one process serves many preprocessed datasets off the fast-open
  path within a capacity budget;
* :mod:`repro.service.maintenance` — a background scheduler that watches
  per-table edit counts and write quiescence and triggers ``repack()``
  without operator action, plus idle-eviction of pooled datasets;
* :mod:`repro.service.http` — a dependency-free HTTP endpoint (asyncio
  streams) exposing the front-end to real network clients.
"""

from .coalescer import WindowBatchCoalescer
from .frontend import GraphVizDBService, ServiceRuntime
from .http import serve_http
from .maintenance import MaintenanceScheduler
from .pool import DatasetPool, PooledDataset

__all__ = [
    "WindowBatchCoalescer",
    "GraphVizDBService",
    "ServiceRuntime",
    "serve_http",
    "MaintenanceScheduler",
    "DatasetPool",
    "PooledDataset",
]

"""LRU pool of open SQLite-backed datasets.

PR 2 made opening a preprocessed database I/O-bound (packed-index pages restore
with a flat ``frombytes`` copy instead of an O(n log n) re-pack); this module
makes that fast-open path *shared*: one process serves many preprocessed
datasets, keeping at most ``capacity`` of them open at once and evicting the
least recently used — the paper's "select a dataset from a number of
real-world datasets" at serving scale.

Opens are **single-flight**: when several threads ask for the same path at the
same moment, exactly one runs :func:`~repro.storage.sqlite_backend.load_from_sqlite`
while the others wait on its result, so a popular cold dataset is never opened
twice concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..config import ClientConfig, StorageConfig, WriteConfig
from ..core.monitoring import ServiceMetrics
from ..core.query_manager import QueryManager
from ..errors import ServiceError
from ..storage.database import GraphVizDatabase
from ..storage.sqlite_backend import load_from_sqlite
from ..writes.journal import replay_journal

__all__ = ["PooledDataset", "DatasetPool"]


@dataclass
class PooledDataset:
    """One open dataset: the database, its query manager, and usage bookkeeping."""

    key: str
    database: GraphVizDatabase
    query_manager: QueryManager
    opened_at: float
    open_seconds: float
    last_used: float = 0.0
    uses: int = 0
    #: Estimated resident size (rows + index pages).  Captured at open time
    #: and re-estimated by :meth:`DatasetPool.refresh_resident_bytes` (after
    #: repack/checkpoint and on every memory-sampler tick), so the pool's
    #: ``max_resident_bytes`` budget tracks post-edit reality.
    resident_bytes: int = 0

    def touch(self) -> None:
        """Mark the entry as just used (refreshes the idle-eviction clock)."""
        self.last_used = time.monotonic()
        self.uses += 1


class DatasetPool:
    """Thread-safe LRU of open :class:`GraphVizDatabase` instances by SQLite path.

    Parameters
    ----------
    capacity:
        Maximum number of datasets kept open; exceeding it evicts the least
        recently used entry.
    idle_seconds:
        Entries unused for this long are dropped by :meth:`evict_idle`
        (called periodically by the maintenance scheduler); ``0`` disables
        idle eviction.
    storage_config:
        Configuration passed to ``load_from_sqlite`` (default: the fast-open
        defaults — packed pages, lazy secondary indexes).
    client_config:
        Client configuration for the per-dataset query managers.
    metrics:
        Optional shared :class:`ServiceMetrics` receiving hit/miss/eviction
        counts.
    max_resident_bytes:
        Byte budget over the estimated resident sizes of the open datasets
        (:meth:`~repro.storage.database.GraphVizDatabase.resident_bytes`);
        exceeding it evicts least recently used entries even below
        ``capacity``.  The most recently opened dataset is never evicted, so
        one dataset larger than the whole budget still serves (the budget
        degrades to "keep one open").  ``0`` disables byte-budget eviction.
    write_config:
        Durable-write configuration.  When journalling is enabled, every open
        replays the dataset's un-checkpointed write-ahead journal tail
        through the edit path before the database is published — so
        acknowledged edits survive both worker crashes (the next owner's
        open replays them) and the pool's own evictions (an evicted dataset's
        in-memory edits are reconstructed on the next open).
    """

    def __init__(
        self,
        capacity: int = 4,
        idle_seconds: float = 300.0,
        storage_config: StorageConfig | None = None,
        client_config: ClientConfig | None = None,
        metrics: ServiceMetrics | None = None,
        max_resident_bytes: int = 0,
        write_config: WriteConfig | None = None,
    ) -> None:
        if capacity <= 0:
            raise ServiceError("pool capacity must be positive")
        if idle_seconds < 0:
            raise ServiceError("idle_seconds must be >= 0 (0 = never evict idle)")
        if max_resident_bytes < 0:
            raise ServiceError("max_resident_bytes must be >= 0 (0 = unlimited)")
        self.capacity = capacity
        self.idle_seconds = idle_seconds
        self.max_resident_bytes = max_resident_bytes
        self.storage_config = storage_config
        self.client_config = client_config
        self.metrics = metrics
        self.write_config = write_config
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, PooledDataset] = OrderedDict()
        self._opening: dict[str, threading.Event] = {}

    @staticmethod
    def _key(path: str | Path) -> str:
        return str(Path(path).resolve())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def open_paths(self) -> list[str]:
        """Resolved paths of the currently open datasets (LRU → MRU order)."""
        with self._lock:
            return list(self._entries)

    def databases(self) -> list[tuple[str, GraphVizDatabase]]:
        """Snapshot of the open databases (for the maintenance scheduler)."""
        with self._lock:
            return [(key, entry.database) for key, entry in self._entries.items()]

    def peek(self, path: str | Path) -> PooledDataset | None:
        """The entry for ``path`` if it is open, without opening or touching it.

        Used by the worker health endpoint to read edit counters of open
        datasets — a health probe must never trigger a cold open.
        """
        with self._lock:
            return self._entries.get(self._key(path))

    def total_resident_bytes(self) -> int:
        """Sum of the open datasets' estimated resident sizes."""
        with self._lock:
            return sum(entry.resident_bytes for entry in self._entries.values())

    def refresh_resident_bytes(self) -> int:
        """Re-estimate every open dataset's resident size; returns the total.

        The size captured at open time goes stale the moment edits land
        (inserted rows, a demoted-then-repacked index); this re-runs the
        estimator and re-applies the ``max_resident_bytes`` eviction budget
        against the fresh numbers.  Called after repack/checkpoint and on
        every memory-sampler tick.  Estimation runs outside the pool lock —
        it samples rows under the table's own locking — so lookups are never
        stalled behind it.
        """
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            try:
                entry.resident_bytes = entry.database.resident_bytes()
            except Exception:  # noqa: BLE001 - one bad dataset must not stop the scan
                continue
        evictions = 0
        with self._lock:
            if self.max_resident_bytes:
                total = sum(e.resident_bytes for e in self._entries.values())
                while total > self.max_resident_bytes and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    total -= evicted.resident_bytes
                    evictions += 1
            total = sum(e.resident_bytes for e in self._entries.values())
        if self.metrics is not None:
            for _ in range(evictions):
                self.metrics.record_pool_eviction()
        return total

    # ------------------------------------------------------------------- lookup

    def get(self, path: str | Path) -> PooledDataset:
        """Return the pooled dataset for ``path``, opening it if necessary.

        Thread-safe with open-once semantics: concurrent callers for a cold
        path block until the single opener finishes (or retry the open
        themselves if the opener failed).
        """
        key = self._key(path)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    entry.touch()
                    if self.metrics is not None:
                        self.metrics.record_pool_hit()
                    return entry
                event = self._opening.get(key)
                if event is None:
                    event = threading.Event()
                    self._opening[key] = event
                    opener = True
                else:
                    opener = False
            if not opener:
                event.wait()
                continue  # the opener published the entry (or failed: we retry)
            try:
                entry = self._open(key, path)
            finally:
                with self._lock:
                    self._opening.pop(key, None)
                event.set()
            return entry

    def _open(self, key: str, path: str | Path) -> PooledDataset:
        started = time.monotonic()
        database = load_from_sqlite(path, config=self.storage_config)
        if self.write_config is not None and self.write_config.journal_enabled:
            replay_journal(
                database, path, write_config=self.write_config,
                metrics=self.metrics,
            )
        open_seconds = time.monotonic() - started
        entry = PooledDataset(
            key=key,
            database=database,
            query_manager=QueryManager(database, self.client_config),
            opened_at=started,
            open_seconds=open_seconds,
            # With the byte budget off the open skips estimation (it samples
            # rows); the memory sampler's refresh hook fills the real size in
            # on its next tick, so attribution still converges.
            resident_bytes=database.resident_bytes() if self.max_resident_bytes else 0,
        )
        entry.touch()
        if self.metrics is not None:
            self.metrics.record_pool_miss()
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                if self.metrics is not None:
                    self.metrics.record_pool_eviction()
            if self.max_resident_bytes:
                total = sum(e.resident_bytes for e in self._entries.values())
                while total > self.max_resident_bytes and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    total -= evicted.resident_bytes
                    if self.metrics is not None:
                        self.metrics.record_pool_eviction()
        return entry

    # ----------------------------------------------------------------- eviction

    def evict(self, path: str | Path) -> bool:
        """Explicitly drop one dataset; returns ``True`` if it was open."""
        key = self._key(path)
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is not None and self.metrics is not None:
            self.metrics.record_pool_eviction()
        return entry is not None

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Drop entries unused for ``idle_seconds``; returns the evicted keys.

        Called by the maintenance scheduler on its poll interval.  A zero
        ``idle_seconds`` makes this a no-op.
        """
        if self.idle_seconds <= 0:
            return []
        if now is None:
            now = time.monotonic()
        evicted: list[str] = []
        with self._lock:
            for key in list(self._entries):
                if now - self._entries[key].last_used >= self.idle_seconds:
                    del self._entries[key]
                    evicted.append(key)
        if self.metrics is not None:
            for _ in evicted:
                self.metrics.record_pool_eviction()
        return evicted

    def clear(self) -> None:
        """Drop every entry (not counted as evictions)."""
        with self._lock:
            self._entries.clear()

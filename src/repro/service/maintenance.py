"""Background maintenance: automatic repack and pool hygiene.

Edit-panel mutations demote a layer table from the immutable packed index to
the dynamic R-tree; PR 2 added the explicit ``repack()`` that restores the
fast path once writes quiesce, but left *when* to call it to an operator.
This scheduler closes that loop: it polls the edit counters and the
write-quiescence hook exposed by the storage layer
(:meth:`~repro.storage.database.GraphVizDatabase.layers_due_for_repack`) and
re-packs demoted layers in the background — queries keep running throughout,
because :meth:`~repro.storage.table.LayerTable.repack` swaps the index under
the table's write lock.

The same poll also evicts idle entries from the dataset pool, so long-running
servers shed datasets nobody is looking at.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..config import ServiceConfig
from ..core.monitoring import ServiceMetrics
from ..storage.database import GraphVizDatabase
from .pool import DatasetPool

__all__ = ["MaintenanceScheduler"]


class MaintenanceScheduler:
    """Watches databases for demoted indexes and re-packs them once writes quiesce.

    Parameters
    ----------
    config:
        Serving configuration; uses ``repack_edit_threshold``,
        ``repack_quiescence_seconds`` and ``maintenance_interval_seconds``.
    metrics:
        Optional shared :class:`ServiceMetrics` receiving repack counts.
    pool:
        Optional :class:`DatasetPool` — its open databases are watched too,
        and its idle entries are evicted on every poll.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: ServiceMetrics | None = None,
        pool: DatasetPool | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics
        self.pool = pool
        self._watched: dict[str, GraphVizDatabase] = {}
        self._hooks: list[Callable[[], object]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: The most recent exception a maintenance cycle swallowed (operator
        #: visibility; the background thread itself never dies of one).
        self.last_error: Exception | None = None

    # ----------------------------------------------------------------- watching

    def watch(self, name: str, database: GraphVizDatabase) -> None:
        """Add a database to the maintenance scan (idempotent by name)."""
        with self._lock:
            self._watched[name] = database

    def unwatch(self, name: str) -> None:
        """Remove a database from the scan."""
        with self._lock:
            self._watched.pop(name, None)

    def watched(self) -> list[str]:
        """Names currently under maintenance (pool datasets not included)."""
        with self._lock:
            return sorted(self._watched)

    def add_hook(self, hook: Callable[[], object]) -> None:
        """Register an extra callable run on every maintenance cycle.

        Used by the front-end to piggyback housekeeping (idle-session expiry)
        on the existing poll; hook errors are swallowed like any other
        maintenance error.
        """
        with self._lock:
            if hook not in self._hooks:
                self._hooks.append(hook)

    # -------------------------------------------------------------------- cycle

    def run_once(self) -> dict[str, object]:
        """One maintenance cycle: repack due layers, evict idle pool entries.

        Exposed for deterministic tests and for callers that drive their own
        schedule; the background thread calls this on every poll.  Returns
        what happened: ``{"repacked": {name: [layers]}, "evicted": [keys]}``.

        Errors from one database (or one hook) are recorded in
        :attr:`last_error` and do not stop the cycle, let alone kill the
        background thread — a single corrupt table must not silently disable
        repack and eviction for every other dataset forever.
        """
        with self._lock:
            databases = list(self._watched.items())
            hooks = list(self._hooks)
        if self.pool is not None:
            databases.extend(self.pool.databases())
        repacked: dict[str, list[int]] = {}
        seen: set[int] = set()
        for name, database in databases:
            if id(database) in seen:  # a watched dataset may also sit in the pool
                continue
            seen.add(id(database))
            try:
                due = database.layers_due_for_repack(
                    edit_threshold=self.config.repack_edit_threshold,
                    quiescence_seconds=self.config.repack_quiescence_seconds,
                )
                done: list[int] = []
                for layer in due:
                    if database.repack_layer(layer):
                        done.append(layer)
                        if self.metrics is not None:
                            self.metrics.record_repack()
            except Exception as exc:  # noqa: BLE001 - survive one bad dataset
                self.last_error = exc
                continue
            if done:
                repacked[name] = done
        if repacked and self.pool is not None:
            # A repack swaps index structures, so the open-time size estimate
            # is stale; re-run it so the byte budget sees the new reality.
            try:
                self.pool.refresh_resident_bytes()
            except Exception as exc:  # noqa: BLE001
                self.last_error = exc
        evicted: list[str] = []
        if self.pool is not None:
            try:
                evicted = self.pool.evict_idle()
            except Exception as exc:  # noqa: BLE001
                self.last_error = exc
        for hook in hooks:
            try:
                hook()
            except Exception as exc:  # noqa: BLE001
                self.last_error = exc
        return {"repacked": repacked, "evicted": evicted}

    # ------------------------------------------------------------------- thread

    @property
    def running(self) -> bool:
        """``True`` while the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background poll thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="graphvizdb-maintenance", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.config.maintenance_interval_seconds):
            try:
                self.run_once()
            except Exception as exc:  # noqa: BLE001 - the thread must survive
                self.last_error = exc

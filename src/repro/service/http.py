"""Dependency-free HTTP endpoint for the serving front-end.

A deliberately small HTTP/1.1 server on ``asyncio`` streams (the container
ships no web framework, and none is needed for a JSON API this size).  It
exposes the online operations of :class:`~repro.service.frontend.GraphVizDBService`
to real network clients:

====================================  =============================================
``GET /datasets``                     served dataset names
``GET /window?dataset=N&...``         window query (optional ``layer``, ``min_x``,
                                      ``min_y``, ``max_x``, ``max_y``, ``payload=1``)
``GET /keyword?dataset=N&q=K&...``    keyword search (optional ``layer``, ``mode``,
                                      ``limit``)
``GET /nearest?dataset=N&x=&y=&...``  kNN rows around a point (optional ``k``,
                                      ``layer``)
``GET /session/new?dataset=N``        open an exploration session (optional
                                      ``layer``, and — for cluster failover —
                                      ``session_id``, ``x``, ``y``, ``zoom``)
``GET /session/<id>/<op>?...``        run a session op (``refresh``, ``pan``, ...)
``GET /session/<id>/close``           close a session (idle ones auto-expire)
``POST /edit/<op>?dataset=N&...``     apply one durable edit (``add_node``,
                                      ``delete_node``, ``move_node``, ``relabel``,
                                      ``add_edge``, ``delete_edge``, ``repack``);
                                      the JSON body carries the op arguments
``GET /metrics``                      serving metrics snapshot (JSON; add
                                      ``?format=prometheus`` for text
                                      exposition)
``GET /debug/trace/<id>``             one completed trace's span tree from
                                      the bounded ring buffer
``GET /debug/slow?n=``                the slow-query log: span trees of the
                                      worst requests above the threshold
``GET /debug/profile?seconds=&hz=``   one sampling-profiler collection:
                                      collapsed stacks tagged with the
                                      active op per sample
``GET /debug/memory?n=``              fresh RSS + component byte attribution
                                      (plus tracemalloc top-N when enabled)
``GET /health``                       liveness + per-dataset edit counters
                                      (+ replication watermarks when subscribed)
``GET /journal/tail?dataset=N&...``   journal feed for read replicas (optional
                                      ``from_seq``, ``max_records``, ``wait_ms``
                                      bounded long-poll)
``POST /replicate/<op>?dataset=N``    replication control plane (``start`` /
                                      ``stop`` / ``promote``), driven by the
                                      cluster router
====================================  =============================================

Edits are journalled before they are applied (see :mod:`repro.writes`); a
200 acknowledgement therefore means the edit is durable against a crashed
worker.  Session responses carry a ``cursor`` object (dataset, layer,
viewport centre, zoom) the cluster router mirrors into its session
directory, so a session can be transparently reopened on another worker
after a failover.

Admission-control rejections surface as HTTP 503 with a ``Retry-After`` hint —
the wire form of the subsystem's explicit backpressure.

Connections are **keep-alive** (HTTP/1.1 default): one connection serves many
sequential requests until the client sends ``Connection: close`` or stays idle
past ``ServiceConfig.http_keepalive_seconds``.  The cluster router depends on
this — its proxy holds persistent connections to every worker.  Each request
additionally runs under ``ServiceConfig.http_request_timeout_seconds``; a
handler that exceeds the budget is abandoned and the client receives 504.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import time
from urllib.parse import parse_qs, urlsplit

from ..core.json_builder import payload_to_json
from ..core.query_manager import KeywordSearchResult, WindowQueryResult
from ..errors import (
    DatasetReadOnlyError,
    GraphVizDBError,
    JournalError,
    LayerNotFoundError,
    QueryError,
    ServiceError,
    ServiceOverloadedError,
    UnknownEditError,
)
from ..faults import FaultInjected, fault_check
from ..obs import (
    TRACE_HEADER,
    TRACE_HEADER_WIRE,
    begin_trace,
    end_trace,
    render_prometheus,
)
from ..slo.slo import slo_op_for_path
from ..spatial.geometry import Point, Rect
from .frontend import GraphVizDBService

__all__ = ["serve_http", "serve_connection", "DEADLINE_HEADER"]

#: Request header carrying the remaining deadline budget in milliseconds.
#: The router stamps it on proxied requests from its own remaining budget;
#: the worker clamps its per-request timeout to it and rejects requests whose
#: deadline already expired at admission (no point computing an answer the
#: proxy has stopped waiting for).
DEADLINE_HEADER = "x-gvdb-deadline-ms"

#: Jittered Retry-After range (seconds) for 503/504 responses: a fleet of
#: clients seeing the same outage must not be told to come back in lockstep.
_RETRY_AFTER_RANGE = (1, 3)
_retry_after_rng = random.Random()

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Request bodies past this size are rejected before they are read into
#: memory (an edit payload is a handful of scalars; anything larger is a
#: malformed or hostile client).
_MAX_BODY_BYTES = 1024 * 1024


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    respond,
    keepalive_seconds: float,
) -> None:
    """Drive one HTTP/1.1 keep-alive connection until it closes.

    The single connection loop shared by the worker endpoint and the cluster
    router: reads requests (idle-expiring after ``keepalive_seconds``; ``0``
    closes after one response), answers methods other than GET/POST with 405,
    and otherwise delegates to ``respond`` — an async callable ``(method,
    target, body, headers) -> (status, payload_bytes)`` (optionally a
    three-tuple with extra response headers) that must not raise, except for
    :class:`~repro.faults.FaultInjected` with the ``drop`` action, which
    closes the connection without a response (the injected "died before
    acking" failure shape).  503/504 responses carry a jittered
    ``Retry-After`` hint (both are the retryable statuses of this API), so
    synchronized clients do not retry as one wave.
    """
    try:
        while True:
            request = await _read_request(reader, idle_seconds=keepalive_seconds)
            if request is None:  # EOF, malformed preamble, or idle expiry
                break
            method, target, headers, body = request
            keep_alive = (
                keepalive_seconds > 0
                and headers.get("connection", "").lower() != "close"
            )
            extra_headers: dict[str, str] = {}
            if method not in ("GET", "POST"):
                status: int = 405
                payload: bytes = json.dumps(
                    {"error": "only GET and POST requests are supported"}
                ).encode()
                keep_alive = False
            else:
                try:
                    result = await respond(method, target, body, headers)
                except FaultInjected:
                    break  # injected connection drop: no response bytes
                if len(result) == 3:
                    status, payload, extra_headers = result
                else:
                    status, payload = result
            retry_after = (
                f"Retry-After: {_retry_after_rng.randint(*_RETRY_AFTER_RANGE)}\r\n"
                if status in (503, 504) else ""
            )
            # JSON unless a handler overrides it (Prometheus exposition is
            # text/plain) — an override moves from extra_headers into the
            # fixed preamble so the header is never emitted twice.
            content_type = extra_headers.pop("Content-Type", "application/json")
            response_headers = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                + retry_after
                + "".join(
                    f"{name}: {value}\r\n"
                    for name, value in extra_headers.items()
                )
                + f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
            )
            writer.write(response_headers.encode() + payload)
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        # Client went away mid-exchange, or sent an unparseable preamble
        # (e.g. a request line past the StreamReader limit raises
        # LimitOverrunError, a ValueError) — close without a response.
        pass
    except asyncio.CancelledError:
        # Shutdown cancelled this connection's task (drain closes the
        # listener first, so no admitted request is lost — only the idle
        # keep-alive wait).  Exit quietly instead of letting the stream
        # machinery log the cancellation as an error.
        pass
    finally:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()


async def serve_http(
    service: GraphVizDBService,
    host: str = "127.0.0.1",
    port: int = 8080,
    keepalive_seconds: float | None = None,
    request_timeout_seconds: float | None = None,
) -> asyncio.AbstractServer:
    """Start serving ``service`` over HTTP; returns the asyncio server.

    The caller owns the lifecycle: ``server.close()`` + ``await
    server.wait_closed()`` to stop, or ``await server.serve_forever()`` to
    block.  Bind ``port=0`` to let the OS pick a free port (tests do).

    ``keepalive_seconds`` / ``request_timeout_seconds`` override the service
    configuration (``0`` disables keep-alive / the timeout respectively).
    """
    config = service.service_config
    if keepalive_seconds is None:
        keepalive_seconds = config.http_keepalive_seconds
    if request_timeout_seconds is None:
        request_timeout_seconds = config.http_request_timeout_seconds

    async def handle_one(
        method: str, target: str, request_body: bytes,
        request_headers: dict[str, str],
        route_headers: dict[str, str],
    ) -> tuple[int, bytes]:
        try:
            fault_check("worker.request", method=method, target=target)
        except FaultInjected as fault:
            if fault.action == "drop":
                raise  # serve_connection closes the socket without a response
            return 500, json.dumps({"error": str(fault)}).encode()
        # Deadline admission: honour the router's propagated budget.  An
        # already-expired deadline is rejected before any work; otherwise the
        # request timeout is clamped to the remaining budget, so the worker
        # never computes longer than anyone upstream is still waiting.
        budget = request_timeout_seconds
        if urlsplit(target).path.startswith("/debug/profile") and budget > 0:
            # A profile collection legitimately runs for its whole requested
            # window; grant it headroom past the normal request budget (the
            # collection itself clamps to profile_max_seconds).
            budget = max(
                budget,
                service.obs_config.profile_max_seconds + 10.0,
            )
        remaining = _deadline_remaining(request_headers)
        if remaining is not None:
            if remaining <= 0:
                service.metrics.record_deadline_rejection()
                return 504, json.dumps(
                    {"error": "deadline expired before admission"}
                ).encode()
            budget = min(budget, remaining) if budget > 0 else remaining
        try:
            if budget > 0:
                result = await asyncio.wait_for(
                    _respond(service, method, target, request_body), budget
                )
            else:
                result = await _respond(service, method, target, request_body)
            status, body = result[0], result[1]
            if len(result) == 3:
                route_headers.update(result[2])
        except asyncio.TimeoutError:
            status, body = 504, {
                "error": f"request exceeded the {budget:g}s server budget"
            }
        except Exception:  # defence: a handler bug must not kill the server
            status, body = 500, {"error": "internal server error"}
        try:
            fault_check(
                "worker.response", method=method, target=target, status=status
            )
        except FaultInjected as fault:
            if fault.action == "drop":
                # The handler ran to completion (an edit is journalled and
                # applied) but the response is lost: the ambiguous-outcome
                # failure the idempotency-key machinery exists to make safe.
                raise
            return 500, json.dumps({"error": str(fault)}).encode()
        return status, body if isinstance(body, bytes) else json.dumps(body).encode()

    async def respond(
        method: str, target: str, request_body: bytes,
        request_headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        request_headers = request_headers or {}
        # Every request runs under a trace: the id is honored from the
        # router's (or client's) X-GVDB-Trace-Id header, minted otherwise,
        # echoed in the response, and the finished span tree lands in the
        # worker's bounded trace store for /debug/trace and /debug/slow.
        trace = trace_token = None
        if service.obs_config.trace_enabled:
            trace, trace_token = begin_trace(
                request_headers.get(TRACE_HEADER),
                name=f"worker {method} {urlsplit(target).path}",
            )
        route_headers: dict[str, str] = {}
        status = 500
        started = time.monotonic()
        try:
            status, payload = await handle_one(
                method, target, request_body, request_headers, route_headers
            )
        finally:
            # SLO accounting at the outermost layer that still knows the
            # final status: admission 503s, deadline 504s and handler
            # failures all consume budget exactly as the client saw them.
            op = slo_op_for_path(urlsplit(target).path.rstrip("/") or "/")
            if op is not None:
                service.metrics.record_op_outcome(
                    op, time.monotonic() - started, status
                )
            if trace is not None:
                trace.finish("ok" if status < 500 else "error")
                service.traces.add(trace)
                end_trace(trace_token)
                route_headers.setdefault(TRACE_HEADER_WIRE, trace.trace_id)
        return status, payload, route_headers

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        await serve_connection(reader, writer, respond, keepalive_seconds)

    return await asyncio.start_server(handle, host=host, port=port)


def _deadline_remaining(headers: dict[str, str]) -> float | None:
    """Seconds left on the request's propagated deadline (``None``: no header)."""
    raw = headers.get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        return float(raw) / 1000.0
    except ValueError:
        return None


async def _read_request(
    reader: asyncio.StreamReader, idle_seconds: float
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Read one full request: ``(method, target, headers, body)``.

    Returns ``None`` on EOF, on a malformed request line, on an oversized
    body, or when no request arrives within the keep-alive idle window
    (``idle_seconds > 0``) — all cases where the connection should simply be
    closed.
    """
    try:
        if idle_seconds > 0:
            first = await asyncio.wait_for(reader.readline(), idle_seconds)
        else:
            first = await reader.readline()
    except asyncio.TimeoutError:
        return None
    request_line = first.decode("latin-1").strip()
    parts = request_line.split()
    if len(parts) != 3:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        return None
    if length:
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length)
    return parts[0], parts[1], headers, body


async def _respond(
    service: GraphVizDBService, method: str, target: str, body: bytes
) -> tuple[int, object]:
    """Dispatch one request target and produce ``(status, json_body_or_bytes)``."""
    split = urlsplit(target)
    path = split.path.rstrip("/") or "/"
    params = {key: values[-1] for key, values in parse_qs(split.query).items()}
    try:
        return await _route(service, method, path, params, body)
    except ServiceOverloadedError as exc:
        return 503, {"error": str(exc), "queue_depth": exc.queue_depth}
    except (KeyError, ValueError, UnknownEditError) as exc:
        return 400, {"error": f"bad request: {exc}"}
    except (QueryError, LayerNotFoundError) as exc:
        # Lookup failures (unknown dataset/layer/node/session) are the
        # client's fault: not found.
        return 404, {"error": str(exc)}
    except DatasetReadOnlyError as exc:
        # Fail-stop degraded mode: the journal's storage is failing, so the
        # dataset rejects writes while reads continue.  503 (not 500): the
        # router may retry on another owner whose storage is healthy.
        return 503, {"error": str(exc), "read_only": True}
    except JournalError as exc:
        # The edit could not be made durable: a server-side storage problem,
        # and emphatically not retryable-as-503 (retrying cannot help until
        # an operator fixes the journal's disk).
        return 500, {"error": str(exc)}
    except ServiceError as exc:
        # e.g. a request racing shutdown — retryable, like overload.
        return 503, {"error": str(exc)}
    except GraphVizDBError as exc:
        # Anything else (corrupt storage, index failures) is a server-side
        # problem; 404 would mislead clients and monitoring into treating it
        # as a bad URL.
        return 500, {"error": str(exc)}


async def _route(
    service: GraphVizDBService,
    method: str,
    path: str,
    params: dict[str, str],
    body: bytes,
) -> tuple[int, object]:
    if path.startswith("/edit/"):
        if method != "POST":
            return 405, {"error": "edits require POST"}
        return await _route_edit(service, path, params, body)
    if path.startswith("/replicate/"):
        if method != "POST":
            return 405, {"error": "replication control requires POST"}
        return await _route_replicate(service, path, params, body)
    if method != "GET":
        return 405, {"error": f"{path} only supports GET"}
    if path == "/journal/tail":
        frame = await service.journal_tail(
            params["dataset"],
            from_seq=int(params.get("from_seq", "0")),
            max_records=max(1, min(int(params.get("max_records", "256")), 4096)),
            wait_seconds=min(float(params.get("wait_ms", "0")) / 1000.0, 5.0),
        )
        return 200, frame
    if path == "/datasets":
        return 200, {"datasets": service.datasets()}
    if path == "/metrics":
        summary = service.metrics_summary()
        if params.get("format") == "prometheus":
            labels = {"worker": service.worker_id} if service.worker_id else {}
            return 200, render_prometheus(summary, labels).encode(), {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }
        return 200, summary
    if path.startswith("/debug/trace/"):
        trace_id = path.rpartition("/")[2]
        payload = service.traces.get(trace_id)
        if payload is None:
            return 404, {"error": f"no trace {trace_id!r} in the ring buffer"}
        return 200, payload
    if path == "/debug/slow":
        return 200, {
            "threshold_seconds": service.traces.slow_threshold_seconds,
            "traces": service.traces.slowest(int(params.get("n", "10"))),
        }
    if path == "/debug/profile":
        # One bounded profile collection; blocks an executor thread for the
        # whole window (handle_one grants this path extra budget headroom).
        result = await service._run(
            service.profile,
            float(params.get("seconds", "2")),
            int(params["hz"]) if "hz" in params else None,
        )
        return 200, result
    if path == "/debug/memory":
        report = await service._run(
            service.memory_debug, max(1, min(int(params.get("n", "10")), 100))
        )
        return 200, report
    if path == "/health":
        # Liveness must answer even while the service drains (the router
        # watches workers through their whole lifecycle).
        return 200, service.health_snapshot()
    if path == "/window":
        result = await service.window_query(
            params["dataset"],
            window=_window_from(params),
            layer=int(params.get("layer", "0")),
        )
        return 200, _window_body(result, with_payload=params.get("payload") == "1")
    if path == "/keyword":
        result = await service.keyword_search(
            params["dataset"],
            params["q"],
            layer=int(params.get("layer", "0")),
            mode=params.get("mode", "contains"),
            limit=int(params["limit"]) if "limit" in params else None,
        )
        return 200, _keyword_body(result)
    if path == "/nearest":
        rows = await service.nearest(
            params["dataset"],
            Point(float(params["x"]), float(params["y"])),
            k=int(params.get("k", "1")),
            layer=int(params.get("layer", "0")),
        )
        return 200, {"rows": [_row_body(row) for row in rows]}
    if path == "/session/new":
        center = None
        if "x" in params and "y" in params:
            center = Point(float(params["x"]), float(params["y"]))
        session_id = await service.create_session(
            params["dataset"],
            start_layer=int(params.get("layer", "0")),
            session_id=params.get("session_id"),
            center=center,
            zoom=float(params["zoom"]) if "zoom" in params else None,
        )
        return 200, {
            "session_id": session_id,
            "cursor": service.session_cursor(session_id),
        }
    if path.startswith("/session/"):
        _, _, rest = path.partition("/session/")
        session_id, _, op = rest.partition("/")
        if not session_id or not op:
            return 400, {"error": "use /session/<id>/<op>"}
        if op == "close":
            closed = await service.close_session(session_id)
            return 200, {"closed": closed}
        result = await service.session_command(
            session_id, op, **_session_kwargs(op, params)
        )
        cursor = service.session_cursor(session_id)
        if isinstance(result, WindowQueryResult):
            return 200, _window_body(
                result, with_payload=params.get("payload") == "1", cursor=cursor
            )
        if isinstance(result, KeywordSearchResult):
            keyword_body = _keyword_body(result)
            keyword_body["cursor"] = cursor
            return 200, keyword_body
        return 200, {"result": result, "cursor": cursor}
    return 404, {"error": f"unknown path {path!r}"}


async def _route_replicate(
    service: GraphVizDBService, path: str, params: dict[str, str], body: bytes
) -> tuple[int, object]:
    """Drive the worker's replication manager (router control plane).

    ``POST /replicate/start`` (JSON body: ``owner_id``, ``owner_host``,
    ``owner_port``) subscribes a dataset to its owner's journal feed;
    ``/replicate/stop`` unsubscribes; ``/replicate/promote`` stops the feed,
    drains the local journal copy and reports the final ``applied_seq`` —
    after which the router routes the dataset's reads *and writes* here.
    """
    _, _, op = path.partition("/replicate/")
    manager = service.replication
    if manager is None:
        return 503, {"error": "replication is not enabled on this worker"}
    dataset = params["dataset"]
    try:
        args = json.loads(body) if body else {}
    except ValueError as exc:
        return 400, {"error": f"bad request: body is not JSON ({exc})"}
    if not isinstance(args, dict):
        return 400, {"error": "bad request: body must be a JSON object"}
    if op == "start":
        result = await service._run(
            manager.start,
            dataset,
            str(args["owner_id"]),
            str(args["owner_host"]),
            int(args["owner_port"]),
        )
    elif op == "stop":
        result = await service._run(manager.stop, dataset)
    elif op == "promote":
        result = await service._run(manager.promote, dataset)
    else:
        return 400, {"error": "use POST /replicate/{start,stop,promote}"}
    return 200, result


async def _route_edit(
    service: GraphVizDBService, path: str, params: dict[str, str], body: bytes
) -> tuple[int, object]:
    """Apply one ``POST /edit/<op>`` request through the write coordinator."""
    _, _, op = path.partition("/edit/")
    if not op or "/" in op:
        return 400, {"error": "use POST /edit/<op>?dataset=<name>"}
    try:
        args = json.loads(body) if body else {}
    except ValueError as exc:
        return 400, {"error": f"bad request: edit body is not JSON ({exc})"}
    if not isinstance(args, dict):
        return 400, {"error": "bad request: edit body must be a JSON object"}
    result = await service.edit(
        params["dataset"], op, args, layer=int(params.get("layer", "0")),
        idempotency_key=params.get("idempotency_key"),
    )
    return 200, result


def _window_from(params: dict[str, str]) -> Rect | None:
    keys = ("min_x", "min_y", "max_x", "max_y")
    if not any(key in params for key in keys):
        return None
    return Rect(*(float(params[key]) for key in keys))


def _session_kwargs(op: str, params: dict[str, str]) -> dict[str, object]:
    """Translate query parameters into the session method's arguments."""
    if op == "pan":
        return {"dx_px": float(params["dx"]), "dy_px": float(params["dy"])}
    if op in ("zoom", "zoom_lod"):
        return {"factor": float(params["factor"])}
    if op == "jump_to":
        return {"center": Point(float(params["x"]), float(params["y"]))}
    if op == "change_layer":
        return {"new_layer": int(params["layer"])}
    if op == "search":
        kwargs: dict[str, object] = {"keyword": params["q"]}
        if "limit" in params:
            kwargs["limit"] = int(params["limit"])
        return kwargs
    if op == "focus_on":
        return {"node_id": int(params["node_id"])}
    return {}


def _window_body(
    result: WindowQueryResult,
    with_payload: bool = False,
    cursor: dict[str, object] | None = None,
) -> bytes:
    meta = {
        "layer": result.layer,
        "num_objects": result.num_objects,
        "num_rows": len(result.rows),
        "num_chunks": len(result.chunks),
        "total_bytes": result.total_bytes,
        "db_query_seconds": result.db_query_seconds,
        "filter_seconds": result.filter_seconds,
        "json_build_seconds": result.json_build_seconds,
        "server_seconds": result.server_seconds,
    }
    if cursor is not None:
        meta["cursor"] = cursor
    if not with_payload:
        return json.dumps(meta).encode()
    # The payload is already JSON (fragment-cached concatenation); splice it
    # in verbatim instead of parse + re-encode.  The cursor rides at the
    # front of the object so the router can mirror it without scanning past
    # a large payload.
    return (
        b'{"meta": ' + json.dumps(meta).encode()
        + b', "payload": ' + payload_to_json(result.payload).encode()
        + b"}"
    )


def _keyword_body(result: KeywordSearchResult) -> dict[str, object]:
    return {
        "keyword": result.keyword,
        "layer": result.layer,
        "num_matches": result.num_matches,
        "matches": result.matches,
        "search_seconds": result.search_seconds,
    }


def _row_body(row) -> dict[str, object]:
    return {
        "row_id": row.row_id,
        "node1_id": row.node1_id,
        "node1_label": row.node1_label,
        "edge_label": row.edge_label,
        "node2_id": row.node2_id,
        "node2_label": row.node2_label,
    }

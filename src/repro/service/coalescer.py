"""Window-batch coalescing: many concurrent clients, one index dispatch.

Interactive exploration traffic is bursty and highly correlated — many users
pan around the same popular regions of the same layer (every new client starts
at the default viewport).  Instead of dispatching each concurrent window query
individually, the coalescer holds the first request of a burst open for a few
milliseconds (or until a size cap), then evaluates the whole batch through the
storage layer's batched entry point
(:meth:`~repro.storage.table.LayerTable.window_query_batch`) and fans the
results back to the waiting callers.

Two effects compound:

* **batching** — one spatial-index dispatch amortises traversal setup over
  every window in the batch;
* **deduplication** — byte-identical windows inside a batch are evaluated
  (and JSON-built) exactly once; duplicate callers share the same immutable
  :class:`~repro.core.query_manager.WindowQueryResult`.

Only plain window queries coalesce (no filters, no server-side decimation);
the front-end routes filtered queries to the direct path, so coalesced and
direct answers are always identical.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field

from ..core.json_builder import build_payload
from ..core.monitoring import ServiceMetrics
from ..core.query_manager import QueryManager, WindowQueryResult
from ..core.streaming import stream_payload
from ..errors import ServiceError
from ..obs import thread_op
from ..spatial.geometry import Rect

__all__ = ["WindowBatchCoalescer"]


@dataclass
class _PendingBatch:
    """Requests gathered for one (dataset, layer) while the window is open."""

    query_manager: QueryManager
    layer: int
    windows: list[Rect] = field(default_factory=list)
    futures: list[asyncio.Future] = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class WindowBatchCoalescer:
    """Gathers concurrent window queries and dispatches them as batches.

    Must be used from a single event loop; the blocking batch evaluation runs
    on ``executor`` and results are delivered back through the loop.

    Parameters
    ----------
    executor:
        Thread pool executing the blocking batch work.
    window_seconds:
        How long the first request of a batch waits for company.  ``0`` still
        coalesces requests that arrive in the same event-loop tick (the timer
        fires on the next iteration), which is exactly the concurrent-burst
        case.
    max_batch:
        Dispatch immediately once a batch holds this many requests.
    metrics:
        Optional shared :class:`ServiceMetrics` receiving batch sizes.
    """

    def __init__(
        self,
        executor: Executor,
        window_seconds: float = 0.002,
        max_batch: int = 16,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.executor = executor
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.metrics = metrics
        self._pending: dict[tuple[str, int], _PendingBatch] = {}

    async def submit(
        self,
        dataset: str,
        query_manager: QueryManager,
        window: Rect,
        layer: int = 0,
    ) -> WindowQueryResult:
        """Enqueue one window query and await its (possibly shared) result."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (dataset, layer)
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch(query_manager=query_manager, layer=layer)
            self._pending[key] = batch
            batch.timer = loop.call_later(self.window_seconds, self._flush, key)
        batch.windows.append(window)
        batch.futures.append(future)
        if len(batch.windows) >= self.max_batch:
            self._flush(key)
        return await future

    def flush_all(self) -> None:
        """Dispatch every open batch immediately (used on shutdown)."""
        for key in list(self._pending):
            self._flush(key)

    # ----------------------------------------------------------------- internal

    def _flush(self, key: tuple[str, int]) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return  # already dispatched by the size cap racing the timer
        if batch.timer is not None:
            batch.timer.cancel()
        loop = asyncio.get_running_loop()
        try:
            submitted = self.executor.submit(
                _execute_batch, batch.query_manager, batch.layer, batch.windows
            )
        except RuntimeError as exc:
            # The executor shut down while this batch's timer was pending (a
            # request racing service stop).  Fail the callers instead of
            # leaving their futures unresolved forever.
            error = ServiceError(f"service stopped before dispatch: {exc}")
            for future in batch.futures:
                if not future.done():
                    future.set_exception(error)
            return
        submitted.add_done_callback(
            lambda done: loop.call_soon_threadsafe(_deliver, batch.futures, done)
        )
        if self.metrics is not None:
            unique = len({
                (w.min_x, w.min_y, w.max_x, w.max_y) for w in batch.windows
            })
            self.metrics.record_batch(len(batch.windows), unique)


def _deliver(futures: list[asyncio.Future], done) -> None:
    """Fan an executor result (or its exception) back to the waiting callers."""
    error = done.exception()
    if error is not None:
        for future in futures:
            if not future.done():
                future.set_exception(error)
        return
    results = done.result()
    for future, result in zip(futures, results):
        if not future.done():
            future.set_result(result)


def _execute_batch(
    query_manager: QueryManager, layer: int, windows: list[Rect]
) -> list[WindowQueryResult]:
    """Evaluate a batch of windows on one layer (runs on a worker thread).

    Byte-identical windows are collapsed before touching the index: each
    unique window gets one spatial evaluation and one JSON build, and every
    duplicate request receives the same result object.  ``db_query_seconds``
    carries each request's amortised share of the single batched index
    dispatch — one share per *request* (not per unique window), so summing
    it across the whole batch reproduces the real index time even when
    duplicates collapsed.

    Runs under ``thread_op("window.batch")``: the submitting requests' spans
    live on the event-loop thread, so without the tag a profiler sample of
    the batch evaluation — the actual packed-filter work — would read ``-``.
    """
    with thread_op("window.batch"):
        return _execute_batch_inner(query_manager, layer, windows)


def _execute_batch_inner(
    query_manager: QueryManager, layer: int, windows: list[Rect]
) -> list[WindowQueryResult]:
    order: list[tuple[float, float, float, float]] = []
    unique: dict[tuple[float, float, float, float], Rect] = {}
    for window in windows:
        window_key = (window.min_x, window.min_y, window.max_x, window.max_y)
        if window_key not in unique:
            unique[window_key] = window
            order.append(window_key)

    table = query_manager.database.table(layer)
    # Captured before the batch's rows are fetched, so fragment fills made
    # stale by a concurrent edit are dropped rather than cached.
    fragments = table.fragment_fill_guard()
    started = time.perf_counter()
    rows_per_window = table.window_query_batch([unique[k] for k in order])
    db_share = (time.perf_counter() - started) / len(windows)

    chunk_size = query_manager.client_config.chunk_size
    results: dict[tuple[float, float, float, float], WindowQueryResult] = {}
    for window_key, rows in zip(order, rows_per_window):
        started = time.perf_counter()
        payload = build_payload(rows, fragments=fragments)
        chunks = list(stream_payload(payload, chunk_size))
        json_seconds = time.perf_counter() - started
        results[window_key] = WindowQueryResult(
            layer=layer,
            window=unique[window_key],
            rows=rows,
            payload=payload,
            chunks=chunks,
            db_query_seconds=db_share,
            json_build_seconds=json_seconds,
            filter_seconds=0.0,
        )
    return [
        results[(w.min_x, w.min_y, w.max_x, w.max_y)] for w in windows
    ]

"""Asyncio front-end of the serving subsystem.

:class:`GraphVizDBService` accepts the online operations of the paper —
window queries, kNN, keyword search, and stateful exploration sessions — from
many concurrent clients.  Blocking query work runs on a bounded thread pool;
the event loop itself never touches an index.  Each dataset has an admission
limit: when ``max_queue_depth`` requests are already in flight, further
requests fail fast with :class:`~repro.errors.ServiceOverloadedError` instead
of queueing without bound, so one slow or popular dataset cannot absorb every
worker and drive tail latency to infinity (explicit backpressure, the HTTP
layer maps it to 503).

Plain window queries are routed through the
:class:`~repro.service.coalescer.WindowBatchCoalescer`; everything else (and
filtered/decimated window queries) dispatches directly.

:class:`ServiceRuntime` wraps a service in a background event-loop thread and
exposes blocking calls, so threaded clients — the CLI, benchmarks, or an
existing synchronous code base — can use the concurrent front-end without
writing any asyncio themselves.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..config import GraphVizDBConfig, ServiceConfig
from ..core.monitoring import ServiceMetrics
from ..core.query_manager import KeywordSearchResult, QueryManager, WindowQueryResult
from ..core.session import ExplorationSession
from ..errors import QueryError, ServiceError, ServiceOverloadedError
from ..slo.slo import AdaptiveAdmission
from ..spatial.geometry import Point, Rect
from ..storage.database import GraphVizDatabase
from ..storage.schema import EdgeRow
from ..writes.coordinator import WriteCoordinator
from .coalescer import WindowBatchCoalescer
from .maintenance import MaintenanceScheduler
from .pool import DatasetPool

__all__ = ["GraphVizDBService", "ServiceRuntime"]

#: Session operations a client may invoke through :meth:`session_command`,
#: mapped to :class:`ExplorationSession` methods.
_SESSION_OPS = {
    "refresh": "refresh",
    "pan": "pan",
    "zoom": "zoom",
    "jump_to": "jump_to",
    "change_layer": "change_layer",
    "zoom_lod": "zoom_with_level_of_detail",
    "search": "search",
    "focus_on": "focus_on",
}


@dataclass
class _ServingSession:
    """One served exploration session and the dataset it belongs to.

    ``tail`` is the completion future of the session's most recent command:
    the front-end chains commands for one session through it on the event
    loop, so a burst of concurrent commands occupies exactly one worker
    thread instead of parking the whole pool on the session's lock.  The
    session's internal reentrant lock remains as the in-process guarantee
    for direct (non-service) callers.  ``last_used`` (monotonic) drives idle
    expiry; ``inflight`` counts commands between admission and completion, so
    the idle sweep can never reap a session that is mid-request (a command
    parked behind a long predecessor chain does not refresh ``last_used``
    while it waits — without the counter it would look idle).
    """

    dataset: str
    session: ExplorationSession
    last_used: float = 0.0
    tail: asyncio.Future | None = None
    inflight: int = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()


class GraphVizDBService:
    """Concurrent multi-dataset serving front-end.

    Parameters
    ----------
    config:
        Full configuration; ``config.service`` drives the thread pool,
        admission control, coalescing, pool and maintenance knobs, and
        ``config.storage`` / ``config.client`` are used when opening pooled
        SQLite datasets.
    pool:
        Optional externally-owned dataset pool (a default one is created
        otherwise).
    metrics:
        Optional externally-owned metrics sink.
    """

    def __init__(
        self,
        config: GraphVizDBConfig | None = None,
        pool: DatasetPool | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config or GraphVizDBConfig()
        self.service_config: ServiceConfig = self.config.service
        self.obs_config = self.config.observability
        self.metrics = metrics or ServiceMetrics(
            histograms_enabled=self.obs_config.histogram_enabled
        )
        # Completed request traces (ring buffer + slow-query log) behind the
        # HTTP layer's /debug/trace and /debug/slow endpoints.
        self.traces = obs.TraceStore(
            ring_size=self.obs_config.trace_ring_size,
            slow_threshold_seconds=self.obs_config.slow_trace_seconds,
            slow_log_size=self.obs_config.slow_log_size,
        )
        # Set by the cluster worker bootstrap; labels Prometheus exposition.
        self.worker_id = ""
        self.pool = pool or DatasetPool(
            capacity=self.service_config.pool_capacity,
            idle_seconds=self.service_config.pool_idle_seconds,
            storage_config=self.config.storage,
            client_config=self.config.client,
            metrics=self.metrics,
            max_resident_bytes=self.service_config.pool_max_resident_bytes,
            write_config=self.config.write,
        )
        # SLO tracking (PR 9): one engine per process fed from the HTTP layer
        # (record_op_outcome), plus — when enabled — the AIMD controller that
        # turns the window op's budget burn into the effective admission
        # limit.  Idempotent: an externally-owned metrics sink keeps its
        # engine.
        self.metrics.configure_slo(self.config.slo)
        self._admission: AdaptiveAdmission | None = None
        if self.config.slo.adaptive_admission and self.metrics.slo is not None:
            self._admission = AdaptiveAdmission(
                self.config.slo,
                self.service_config.max_queue_depth,
                self.metrics.slo,
            )
            self.metrics.attach_admission(self._admission)
        self.writes = WriteCoordinator(config=self.config, metrics=self.metrics)
        # A completed checkpoint rewrote the dataset from memory — refresh the
        # pool's size estimates so the byte budget tracks post-edit reality.
        self.writes.on_checkpoint = self.pool.refresh_resident_bytes
        self.maintenance = MaintenanceScheduler(
            config=self.service_config, metrics=self.metrics, pool=self.pool
        )
        self.maintenance.add_hook(self._expire_idle_sessions)
        # Continuous profiling + resource accounting (PR 10).  The profiler
        # only samples while a /debug/profile collection is running; the
        # memory sampler ticks in the background for the whole service
        # lifetime, re-estimating pool sizes on each tick.
        self.profiler = obs.SamplingProfiler(
            default_hz=self.obs_config.profile_hz,
            max_stacks=self.obs_config.profile_max_stacks,
        )
        self.memory_sampler = obs.MemorySampler(
            interval_seconds=self.obs_config.memory_sample_seconds,
            sources={
                "pool": self.pool.total_resident_bytes,
                "journal": self.writes.journal_bytes,
            },
            on_sample=self.metrics.record_memory_sample,
        )
        self.memory_sampler.add_refresh_hook(self.pool.refresh_resident_bytes)
        self._tracemalloc_started = False
        self._memory: dict[str, tuple[GraphVizDatabase, QueryManager]] = {}
        self._sqlite: dict[str, str] = {}
        self._sessions: dict[str, _ServingSession] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._coalescer: WindowBatchCoalescer | None = None
        self._started = False
        # Set by the cluster worker bootstrap when this service runs inside a
        # supervised fleet: a ReplicationManager driving this worker's
        # journal-feed subscriptions (None in single-process deployments).
        self.replication = None

    # ------------------------------------------------------------- registration

    def register_dataset(
        self,
        name: str,
        database: GraphVizDatabase,
        query_manager: QueryManager | None = None,
    ) -> None:
        """Serve an already-open (in-memory) database under ``name``."""
        self._memory[name] = (
            database,
            query_manager or QueryManager(database, self.config.client),
        )
        self.maintenance.watch(name, database)

    def attach_sqlite(self, name: str, path: str | Path) -> None:
        """Serve a preprocessed SQLite file; opened through the pool on demand."""
        self._sqlite[name] = str(path)

    def datasets(self) -> list[str]:
        """Names of every dataset the service can answer for."""
        return sorted(set(self._memory) | set(self._sqlite))

    def sqlite_path(self, name: str) -> str | None:
        """The SQLite backing file of ``name`` (``None`` for in-memory datasets)."""
        return self._sqlite.get(name)

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> "GraphVizDBService":
        """Create the worker pool and start background maintenance."""
        if self._started:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.service_config.max_workers,
            thread_name_prefix="graphvizdb-worker",
        )
        self._coalescer = WindowBatchCoalescer(
            executor=self._executor,
            window_seconds=self.service_config.coalesce_window_seconds,
            max_batch=self.service_config.coalesce_max_batch,
            metrics=self.metrics,
        )
        self.maintenance.start()
        self.memory_sampler.start()
        if self.obs_config.tracemalloc_enabled:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
        self._started = True
        return self

    async def stop(self) -> None:
        """Stop maintenance, flush open batches, and shut the worker pool down."""
        if not self._started:
            return
        # Refuse new requests first, so nothing slips into the coalescer or
        # executor while they tear down (a straggler that still does is
        # failed by the coalescer's shutdown guard, not left hanging).
        self._started = False
        self.maintenance.stop()
        self.memory_sampler.stop()
        if self._tracemalloc_started:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started = False
        if self.replication is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.replication.stop_all
            )
        await self.writes.drain()
        if self._coalescer is not None:
            self._coalescer.flush_all()
        if self._executor is not None:
            # Let already-submitted batch work finish so no caller is left
            # awaiting a future that nobody will ever resolve.
            await asyncio.get_running_loop().run_in_executor(
                None, self._executor.shutdown
            )
        self._executor = None
        self._coalescer = None

    async def __aenter__(self) -> "GraphVizDBService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ---------------------------------------------------------------- admission

    def _admit(self, dataset: str) -> None:
        # ServiceMetrics.try_admit is the single queue-depth counter, so the
        # admission decision and the /metrics snapshot can never disagree.
        # Under adaptive admission the limit is the AIMD controller's — it
        # tightens while the window op burns error budget (p99 over target)
        # and relaxes back toward the configured maximum when it stops.
        if self._admission is not None:
            limit = self._admission.effective_limit()
        else:
            limit = self.service_config.max_queue_depth
        if self.metrics.try_admit(dataset, limit) is None:
            raise ServiceOverloadedError(
                dataset, self.metrics.current_queue_depth(dataset), limit
            )

    def _release(self, dataset: str) -> None:
        self.metrics.record_completed(dataset)

    def queue_depth(self, dataset: str) -> int:
        """Current number of admitted requests for one dataset."""
        return self.metrics.current_queue_depth(dataset)

    # --------------------------------------------------------------- resolution

    def _require_started(self) -> None:
        if not self._started:
            raise ServiceError("service is not started; use 'async with service:'")

    def _worker_pool(self) -> ThreadPoolExecutor:
        """The managed executor, or an explicit error when stopping.

        ``run_in_executor(None, ...)`` would silently fall back to the event
        loop's default pool after :meth:`stop` cleared ``_executor`` — work
        escaping the managed pool whose completion callback can land on a
        stopped loop and hang the caller forever.  Failing fast instead makes
        a request racing shutdown an error, not a hang.
        """
        executor = self._executor
        if executor is None:
            raise ServiceError("service is stopping; request rejected")
        return executor

    async def _resolve(self, name: str) -> tuple[GraphVizDatabase, QueryManager]:
        entry = self._memory.get(name)
        if entry is not None:
            return entry
        path = self._sqlite.get(name)
        if path is not None:
            # Opening (on a pool miss) is blocking I/O — executor, not loop.
            with obs.span("pool.open", dataset=name):
                pooled = await asyncio.get_running_loop().run_in_executor(
                    self._worker_pool(), self.pool.get, path
                )
            return pooled.database, pooled.query_manager
        raise QueryError(
            f"dataset {name!r} is not served; available: "
            f"{', '.join(self.datasets()) or 'none'}"
        )

    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        executor = self._worker_pool()
        # run_in_executor does NOT propagate contextvars; carry the current
        # context across the pool boundary explicitly, so spans opened on
        # worker threads (journal append/fsync) attach to the request's
        # trace and fault_check sees the active trace id.
        context = contextvars.copy_context()

        def call():
            # The copied context carries the request's innermost span; adopt
            # its name as this pool thread's op so profiler samples of the
            # blocking work attribute to the request's phase, not "-".
            active = obs.current_span()
            if active is not None:
                with obs.thread_op(active.name):
                    return fn(*args, **kwargs)
            return fn(*args, **kwargs)

        return await loop.run_in_executor(executor, lambda: context.run(call))

    # ----------------------------------------------------------------- requests

    async def window_query(
        self,
        dataset: str,
        window: Rect | None = None,
        layer: int = 0,
        filters=None,
        max_rows: int | None = None,
    ) -> WindowQueryResult:
        """Evaluate one window query (coalesced with concurrent neighbours).

        ``window=None`` queries the dataset's default viewport.  Filtered or
        decimated queries bypass the coalescer (they do not batch), so their
        results are identical to the direct :class:`QueryManager` path.
        """
        self._require_started()
        started = time.perf_counter()
        self._admit(dataset)
        try:
            with obs.span("window", dataset=dataset, layer=layer) as current:
                database, query_manager = await self._resolve(dataset)
                if window is None:
                    window = query_manager.default_viewport(layer=layer).window()
                plain = filters is None and max_rows is None
                if plain and self._coalescer is not None and (
                    self.service_config.coalesce_max_batch > 1
                ):
                    with obs.span("coalesce"):
                        result = await self._coalescer.submit(
                            dataset, query_manager, window, layer=layer
                        )
                else:
                    result = await self._run(
                        query_manager.window_query,
                        window,
                        layer=layer,
                        filters=filters,
                        max_rows=max_rows,
                    )
                self._observe_window(current, started, result)
            return result
        finally:
            self._release(dataset)

    def _observe_window(self, current, started: float, result: WindowQueryResult) -> None:
        """Record one window query into histograms and the active span tree.

        Queue wait is the admitted wall time not spent computing (executor
        queueing plus coalesce hold); DB/filter/JSON phases come from the
        query layer's own timers, so the span tree attributes a slow window
        to the phase that actually ate the time.
        """
        elapsed = time.perf_counter() - started
        queue_wait = max(0.0, elapsed - result.server_seconds)
        self.metrics.record_latency("window", elapsed)
        self.metrics.record_latency("window.queue", queue_wait)
        self.metrics.record_latency("window.db", result.db_query_seconds)
        self.metrics.record_latency("window.filter", result.filter_seconds)
        self.metrics.record_latency("window.json", result.json_build_seconds)
        if current is not None:
            current.annotate(num_objects=result.num_objects)
            current.add_timed_child("queue", queue_wait)
            current.add_timed_child("db", result.db_query_seconds)
            current.add_timed_child("filter", result.filter_seconds)
            current.add_timed_child("json", result.json_build_seconds)

    async def keyword_search(
        self,
        dataset: str,
        keyword: str,
        layer: int = 0,
        mode: str = "contains",
        limit: int | None = None,
    ) -> KeywordSearchResult:
        """Keyword search over one dataset's node labels."""
        self._require_started()
        started = time.perf_counter()
        self._admit(dataset)
        try:
            with obs.span("keyword", dataset=dataset, layer=layer):
                _, query_manager = await self._resolve(dataset)
                result = await self._run(
                    query_manager.keyword_search, keyword, layer=layer, mode=mode,
                    limit=limit,
                )
            self.metrics.record_latency("keyword", time.perf_counter() - started)
            return result
        finally:
            self._release(dataset)

    async def nearest(
        self, dataset: str, point: Point, k: int = 1, layer: int = 0
    ) -> list[EdgeRow]:
        """k-nearest-neighbour rows around a plane point (kNN request)."""
        self._require_started()
        started = time.perf_counter()
        self._admit(dataset)
        try:
            with obs.span("nearest", dataset=dataset, layer=layer):
                database, _ = await self._resolve(dataset)
                rows = await self._run(_nearest_rows, database, point, k, layer)
            self.metrics.record_latency("nearest", time.perf_counter() - started)
            return rows
        finally:
            self._release(dataset)

    async def edit(
        self, dataset: str, op: str, args: dict, layer: int = 0,
        idempotency_key: str | None = None,
    ) -> dict[str, object]:
        """Apply one durable edit (the HTTP ``POST /edit/<op>`` entry point).

        Edits share the read path's per-dataset admission control, then
        serialise on the :class:`~repro.writes.coordinator.WriteCoordinator`'s
        single-writer lock: the journal append and the table mutation are one
        atomic step relative to other writers, while reads (which never take
        this lock) continue against the tables' own synchronisation.  The
        acknowledgement carries the journal sequence number and the dataset's
        post-edit edit counter; by the time the caller sees it, the edit is
        journalled on disk — a SIGKILL immediately after loses nothing.

        A checkpoint (incremental save + journal truncation) is scheduled in
        the background once the journal passes the configured depth; the
        triggering edit does not wait for it.

        ``idempotency_key`` (the ``idempotency_key`` query parameter on
        ``POST /edit/*``) makes the edit safely retryable: the coordinator
        journals the key with the record and suppresses re-application, so a
        client — or the cluster router failing over a write whose first owner
        died mid-ack — can resend without risking a double apply.
        """
        self._require_started()
        started = time.perf_counter()
        self._admit(dataset)
        try:
            with obs.span("edit", dataset=dataset, op=op):
                database, _ = await self._resolve(dataset)
                path = self._sqlite.get(dataset)
                async with self.writes.lock_for(dataset):
                    result = await self._run(
                        self.writes.apply_sync, dataset, database, path, op, args,
                        layer, idempotency_key,
                    )
                if path is not None and self.writes.checkpoint_due(dataset):
                    self.writes.schedule_checkpoint(
                        dataset, path, self._run, self._pooled_database(path)
                    )
            self.metrics.record_latency("edit", time.perf_counter() - started)
            return result
        finally:
            self._release(dataset)

    async def journal_tail(
        self,
        dataset: str,
        from_seq: int = 0,
        max_records: int = 256,
        wait_seconds: float = 0.0,
    ) -> dict[str, object]:
        """Serve one journal-tail feed poll (``GET /journal/tail``).

        Returns the journal records with ``seq > from_seq`` (at most
        ``max_records``), each with its blake2b digest so the subscriber can
        verify the bytes it re-encodes, plus the journal head (``last_seq``,
        the replica's lag reference) and the oldest retained sequence
        (``floor_seq`` — a cursor below it means the owner checkpointed past
        the subscriber, who must resync from the snapshot).

        ``wait_seconds > 0`` turns the poll into a bounded long-poll: when
        nothing is newer than ``from_seq``, the call parks on the write
        coordinator's append signal until a record lands or the wait times
        out, so an idle feed costs one request per wait window instead of a
        busy poll.  Feed polls bypass per-dataset admission on purpose —
        replication must keep draining exactly when the dataset is saturated
        with client traffic.
        """
        self._require_started()
        path = self._sqlite.get(dataset)
        if dataset not in self._memory and path is None:
            raise QueryError(
                f"dataset {dataset!r} is not served; available: "
                f"{', '.join(self.datasets()) or 'none'}"
            )

        def read() -> dict[str, object]:
            frame = self.writes.journal_tail(dataset, path, from_seq, max_records)
            if not frame["records"] and wait_seconds > 0:
                if self.writes.wait_for_append(dataset, from_seq, wait_seconds):
                    return self.writes.journal_tail(
                        dataset, path, from_seq, max_records
                    )
            return frame

        frame = await self._run(read)
        frame["dataset"] = dataset
        return frame

    def _pooled_database(self, path: str):
        """An execution-time resolver for the dataset currently pooled at ``path``.

        Handed to the write coordinator's checkpoint scheduler: the pool entry
        is looked up when the checkpoint actually runs, never captured early
        (see :meth:`WriteCoordinator.schedule_checkpoint`).
        """
        def resolve():
            entry = self.pool.peek(path)
            return entry.database if entry is not None else None

        return resolve

    def metrics_summary(self) -> dict[str, object]:
        """The serving metrics snapshot (queue depth, coalescing, pool, repacks)."""
        return self.metrics.summary()

    # ---------------------------------------------------- profiling / memory

    def profile(self, seconds: float = 2.0, hz: int | None = None) -> dict:
        """One bounded profile collection (``GET /debug/profile``; blocking).

        Runs the sampling profiler for ``seconds`` (clamped to
        ``ObservabilityConfig.profile_max_seconds``) and returns the collapsed
        profile dict, tagged with this worker's id.  Called on an executor
        thread by the HTTP layer — the collection occupies that one thread
        plus the sampler's own daemon thread; request traffic keeps flowing.
        """
        bounded = min(max(float(seconds), 0.05), self.obs_config.profile_max_seconds)
        result = self.profiler.collect(bounded, hz)
        self.metrics.record_profile_run(result["samples"])
        result["worker"] = self.worker_id
        return result

    def memory_debug(self, top_n: int = 10) -> dict:
        """An on-demand memory report (``GET /debug/memory``; blocking).

        Forces one sampler tick (fresh RSS + attribution, pool sizes
        re-estimated) and attaches ``tracemalloc`` top-``top_n`` allocation
        sites when the opt-in knob enabled tracing.
        """
        sample = self.memory_sampler.sample_once()
        return {
            "worker": self.worker_id,
            "sample": sample,
            "samples": self.memory_sampler.samples,
            "tracemalloc": obs.tracemalloc_top(top_n),
        }

    def health_snapshot(self) -> dict[str, object]:
        """Liveness + cache-invalidation state for the cluster router.

        ``datasets`` maps every served dataset to its monotonic edit counter
        (:meth:`~repro.storage.database.GraphVizDatabase.edit_counter`); the
        router compares successive snapshots and drops cached window results
        for any dataset whose counter moved.  SQLite datasets not currently
        open in the pool report ``0`` — cheap by design: a health probe must
        never trigger a cold open (the router invalidates on *any* change,
        so the reset that comes with eviction is also a change).
        """
        counters: dict[str, int] = {}
        for name, (database, _) in self._memory.items():
            counters[name] = database.edit_counter()
        for name, path in self._sqlite.items():
            entry = self.pool.peek(path)
            counters[name] = entry.database.edit_counter() if entry else 0
        return {
            "status": "ok" if self._started else "stopping",
            "datasets": counters,
            "open_datasets": len(self.pool),
            "resident_bytes": self.pool.total_resident_bytes(),
            "sessions": len(self._sessions),
            "read_only": self.writes.read_only_datasets(),
            "replication": (
                self.replication.status() if self.replication is not None else {}
            ),
            "slo": self._slo_health(),
        }

    def _slo_health(self) -> dict[str, object]:
        """Per-op burn-rate alerts + the admission controller's current limit.

        Kept deliberately small (alerts only, not the full budget accounting —
        that lives in ``/metrics``): health probes are frequent and this dict
        rides along on every one.
        """
        if self.metrics.slo is None:
            return {}
        engine = self.metrics.slo
        snapshot: dict[str, object] = {
            "alerts": {
                op: engine.alert(op)
                for op in sorted(engine.ops())
                if engine.alert(op) != "ok"
            },
        }
        if self._admission is not None:
            snapshot["admission_limit"] = self._admission.effective_limit()
        return snapshot

    # ----------------------------------------------------------------- sessions

    async def create_session(
        self,
        dataset: str,
        start_layer: int = 0,
        session_id: str | None = None,
        center: Point | None = None,
        zoom: float | None = None,
    ) -> str:
        """Open an exploration session; returns its id for session commands.

        ``session_id`` lets the cluster router *reopen* a session under its
        existing public id after the worker that held it crashed: the new
        worker rebuilds the cursor from the replicated ``center`` / ``zoom``
        / ``start_layer`` and the client never observes a reset.  If the id
        is already live here (a failover retry racing the original), the
        existing session is kept.
        """
        self._require_started()
        self._admit(dataset)
        try:
            if session_id is not None:
                existing = self._sessions.get(session_id)
                if existing is not None and existing.dataset == dataset:
                    existing.touch()
                    return session_id
            _, query_manager = await self._resolve(dataset)
            session = await self._run(
                ExplorationSession,
                query_manager,
                self.config.client,
                start_layer=start_layer,
            )
            if center is not None or zoom is not None:
                session.restore_cursor(center=center, zoom=zoom)
            if session_id is None:
                session_id = uuid.uuid4().hex
            serving = _ServingSession(dataset=dataset, session=session)
            serving.touch()
            self._sessions[session_id] = serving
            return session_id
        finally:
            self._release(dataset)

    def session_cursor(self, session_id: str) -> dict[str, object] | None:
        """The session's replication cursor: dataset + layer + viewport.

        A lock-free snapshot (see :meth:`ExplorationSession.cursor`) the HTTP
        layer attaches to session responses so the cluster router can mirror
        every cursor it proxies.
        """
        serving = self._sessions.get(session_id)
        if serving is None:
            return None
        return {"dataset": serving.dataset, **serving.session.cursor()}

    async def session_command(self, session_id: str, op: str, **kwargs):
        """Run one session operation (``refresh``, ``pan``, ``zoom``, ...).

        Commands of the same session serialise (a session is one user's
        stateful cursor — concurrent pans would interleave viewport
        updates), while different sessions run in parallel on the worker
        pool.  Serialisation happens on the event loop by chaining each
        command behind its predecessor's completion future, so a burst of
        commands for one session holds at most one worker thread — never
        the whole pool parked on a lock.
        """
        self._require_started()
        serving = self._sessions.get(session_id)
        if serving is None:
            raise QueryError(f"session {session_id!r} does not exist")
        method_name = _SESSION_OPS.get(op)
        if method_name is None:
            raise QueryError(
                f"unknown session op {op!r}; available: "
                f"{', '.join(sorted(_SESSION_OPS))}"
            )
        self._admit(serving.dataset)
        started = time.perf_counter()
        serving.touch()
        serving.inflight += 1
        previous = serving.tail
        turn: asyncio.Future = asyncio.get_running_loop().create_future()
        serving.tail = turn
        try:
            with obs.span("session", dataset=serving.dataset, op=op):
                if previous is not None and not previous.done():
                    # Predecessor futures only ever resolve with None (their
                    # command's own errors propagate to their own caller).
                    await previous
                result = await self._run(
                    getattr(serving.session, method_name), **kwargs
                )
            self.metrics.record_latency("session", time.perf_counter() - started)
            return result
        finally:
            if not turn.done():
                turn.set_result(None)
            if serving.tail is turn:
                serving.tail = None
            serving.inflight -= 1
            # Touch again at completion: the idle clock starts when the
            # command *finished*, not when it was admitted (a long command
            # chain must not look idle the moment it drains).
            serving.touch()
            self._release(serving.dataset)

    async def close_session(self, session_id: str) -> bool:
        """Drop a session; returns ``True`` if it existed."""
        return self._sessions.pop(session_id, None) is not None

    def _expire_idle_sessions(self) -> list[str]:
        """Drop sessions idle past ``session_idle_seconds`` (maintenance hook).

        Clients that never close their sessions (a browser that just
        disconnects) must not grow ``_sessions`` — and the pooled databases
        those sessions pin — without bound.
        """
        idle_limit = self.service_config.session_idle_seconds
        if idle_limit <= 0:
            return []
        now = time.monotonic()
        stale = [
            session_id
            for session_id, serving in list(self._sessions.items())
            if serving.inflight == 0 and now - serving.last_used >= idle_limit
        ]
        expired: list[str] = []
        for session_id in stale:
            # Re-check before the pop: a command admitted after the scan
            # above must not have its session reaped out from under it (the
            # hook runs on the maintenance thread, concurrently with the
            # event loop's admissions).
            serving = self._sessions.get(session_id)
            if serving is not None and serving.inflight == 0:
                self._sessions.pop(session_id, None)
                expired.append(session_id)
        return expired


def _nearest_rows(
    database: GraphVizDatabase, point: Point, k: int, layer: int
) -> list[EdgeRow]:
    """Fetch the k nearest rows via the layer's spatial index (worker thread)."""
    return database.table(layer).nearest(point, k=k)


class ServiceRuntime:
    """A :class:`GraphVizDBService` running on a background event-loop thread.

    Gives synchronous, thread-safe access to the async front-end: every method
    submits a coroutine to the service loop and blocks for its result, so N
    client threads calling :meth:`window_query` concurrently are exactly the
    coalescer's target workload.  Use as a context manager, or call
    :meth:`close` explicitly.
    """

    def __init__(self, service: GraphVizDBService) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="graphvizdb-service", daemon=True
        )
        self._thread.start()
        self._call(service.start())

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # ------------------------------------------------------------ sync wrappers

    def window_query(self, dataset: str, window: Rect | None = None, **kwargs):
        """Blocking :meth:`GraphVizDBService.window_query`."""
        return self._call(self.service.window_query(dataset, window, **kwargs))

    def keyword_search(self, dataset: str, keyword: str, **kwargs):
        """Blocking :meth:`GraphVizDBService.keyword_search`."""
        return self._call(self.service.keyword_search(dataset, keyword, **kwargs))

    def nearest(self, dataset: str, point: Point, k: int = 1, layer: int = 0):
        """Blocking :meth:`GraphVizDBService.nearest`."""
        return self._call(self.service.nearest(dataset, point, k=k, layer=layer))

    def edit(self, dataset: str, op: str, args: dict, layer: int = 0,
             idempotency_key: str | None = None):
        """Blocking :meth:`GraphVizDBService.edit`."""
        return self._call(self.service.edit(
            dataset, op, args, layer=layer, idempotency_key=idempotency_key
        ))

    def create_session(self, dataset: str, start_layer: int = 0) -> str:
        """Blocking :meth:`GraphVizDBService.create_session`."""
        return self._call(self.service.create_session(dataset, start_layer))

    def session_command(self, session_id: str, op: str, **kwargs):
        """Blocking :meth:`GraphVizDBService.session_command`."""
        return self._call(self.service.session_command(session_id, op, **kwargs))

    def close_session(self, session_id: str) -> bool:
        """Blocking :meth:`GraphVizDBService.close_session`."""
        return self._call(self.service.close_session(session_id))

    def metrics_summary(self) -> dict[str, object]:
        """The service's metrics snapshot."""
        return self.service.metrics_summary()

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop the service and tear the loop thread down (idempotent)."""
        if not self._thread.is_alive():
            return
        self._call(self.service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "ServiceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Interaction-trace workload generator.

The paper's headline claim is *interactivity*: a user panning, zooming and
switching layers gets every new window in interactive time regardless of the
total graph size.  The Fig. 3 workload measures isolated random windows; this
module generates *session traces* — realistic sequences of dependent
interactions (pan, zoom, layer switch, focus) — that the client simulator can
replay against an :class:`~repro.core.session.ExplorationSession`.  They drive
the caching ablation benchmark and can be used to stress-test the online path.
"""

from __future__ import annotations

import random

from ..storage.database import GraphVizDatabase

__all__ = ["panning_trace", "exploration_trace"]


def panning_trace(
    num_steps: int = 20,
    step_px: float = 300.0,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Generate a drifting pan trace (the "follow a path on the plane" motion).

    Each step pans by ``step_px`` pixels in a direction that changes slowly, so
    consecutive windows overlap heavily — the situation the window cache and
    prefetcher are designed for.
    """
    rng = random.Random(seed)
    trace: list[dict[str, object]] = [{"op": "refresh"}]
    direction_x, direction_y = 1.0, 0.0
    for _ in range(num_steps):
        # Slightly rotate the direction to produce a curved path.
        angle_jitter = rng.uniform(-0.4, 0.4)
        direction_x, direction_y = (
            direction_x - angle_jitter * direction_y,
            direction_y + angle_jitter * direction_x,
        )
        norm = max((direction_x**2 + direction_y**2) ** 0.5, 1e-9)
        direction_x /= norm
        direction_y /= norm
        trace.append({
            "op": "pan",
            "dx": direction_x * step_px,
            "dy": direction_y * step_px,
        })
    return trace


def exploration_trace(
    database: GraphVizDatabase,
    num_interactions: int = 30,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Generate a mixed trace: pans, zooms, layer switches and focus jumps.

    The node ids used by focus operations are sampled from the database so the
    trace is always replayable against it.
    """
    rng = random.Random(seed)
    layers = database.layers()
    node_ids = sorted(database.table(0).distinct_node_ids())
    trace: list[dict[str, object]] = [{"op": "refresh"}]
    for _ in range(num_interactions):
        roll = rng.random()
        if roll < 0.55:
            trace.append({
                "op": "pan",
                "dx": rng.uniform(-400, 400),
                "dy": rng.uniform(-400, 400),
            })
        elif roll < 0.75:
            trace.append({"op": "zoom", "factor": rng.choice([0.5, 0.8, 1.25, 2.0])})
        elif roll < 0.9 and len(layers) > 1:
            trace.append({"op": "layer", "layer": rng.choice(layers)})
        elif node_ids:
            trace.append({"op": "focus", "node_id": rng.choice(node_ids)})
        else:
            trace.append({"op": "refresh"})
    return trace

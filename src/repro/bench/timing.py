"""Timing aggregation for benchmark runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..client.simulator import InteractionTiming

__all__ = ["WindowSizeAggregate", "aggregate_timings"]


@dataclass
class WindowSizeAggregate:
    """Average Fig. 3 measurements for one window size.

    All time fields are averages in **milliseconds** (the unit of Fig. 3);
    ``avg_objects`` is the average number of nodes + edges per window.
    """

    window_size: int
    num_queries: int
    db_query_ms: float
    json_build_ms: float
    communication_rendering_ms: float
    total_ms: float
    avg_objects: float
    avg_nodes: float = 0.0
    avg_edges: float = 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Return the aggregate as a flat dictionary."""
        return {
            "window_size": self.window_size,
            "num_queries": self.num_queries,
            "db_query_ms": self.db_query_ms,
            "json_build_ms": self.json_build_ms,
            "communication_rendering_ms": self.communication_rendering_ms,
            "total_ms": self.total_ms,
            "avg_objects": self.avg_objects,
            "avg_nodes": self.avg_nodes,
            "avg_edges": self.avg_edges,
        }


def aggregate_timings(
    window_size: int, timings: list[InteractionTiming]
) -> WindowSizeAggregate:
    """Average a list of per-query timings into one Fig. 3 data point."""
    count = max(len(timings), 1)

    def mean(values: list[float]) -> float:
        return sum(values) / count

    return WindowSizeAggregate(
        window_size=window_size,
        num_queries=len(timings),
        db_query_ms=mean([t.db_query_seconds for t in timings]) * 1000.0,
        json_build_ms=mean([t.json_build_seconds for t in timings]) * 1000.0,
        communication_rendering_ms=(
            mean([t.communication_rendering_seconds for t in timings]) * 1000.0
        ),
        total_ms=mean([t.total_seconds for t in timings]) * 1000.0,
        avg_objects=mean([float(t.num_objects) for t in timings]),
        avg_nodes=mean([float(t.num_nodes) for t in timings]),
        avg_edges=mean([float(t.num_edges) for t in timings]),
    )

"""Benchmark workload generators.

The paper's online evaluation uses "window queries whose size varies from 200^2
to 3000^2 pixels ... For each window size, we generated 100 random queries" on
layer 0.  :func:`random_windows` reproduces that workload against the bounds of
an indexed layer; :func:`window_size_sweep` yields the full (size -> windows)
parameter sweep of Fig. 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..spatial.geometry import Rect
from ..storage.database import GraphVizDatabase

__all__ = ["WindowWorkload", "random_windows", "window_size_sweep", "PAPER_WINDOW_SIZES"]

#: The window edge lengths (pixels) used on the x-axis of Fig. 3.
PAPER_WINDOW_SIZES = (200, 1500, 2000, 2500, 3000)


@dataclass(frozen=True)
class WindowWorkload:
    """One point of the Fig. 3 sweep: a window size and its random windows."""

    window_size: int
    windows: tuple[Rect, ...]

    @property
    def num_queries(self) -> int:
        """Number of windows in the workload."""
        return len(self.windows)


def random_windows(
    bounds: Rect,
    window_size: float,
    count: int = 100,
    seed: int = 0,
) -> list[Rect]:
    """Generate ``count`` random square windows of ``window_size`` inside ``bounds``.

    Window centres are drawn uniformly from the region where the window still
    fits inside the drawing (when the drawing is smaller than the window the
    centre collapses to the drawing centre, as in the original experiments run
    on the lowest abstraction layer).
    """
    rng = random.Random(seed)
    half = window_size / 2.0
    min_x = bounds.min_x + half
    max_x = bounds.max_x - half
    min_y = bounds.min_y + half
    max_y = bounds.max_y - half
    windows: list[Rect] = []
    for _ in range(count):
        if min_x <= max_x:
            center_x = rng.uniform(min_x, max_x)
        else:
            center_x = bounds.center.x
        if min_y <= max_y:
            center_y = rng.uniform(min_y, max_y)
        else:
            center_y = bounds.center.y
        windows.append(
            Rect(center_x - half, center_y - half, center_x + half, center_y + half)
        )
    return windows


def window_size_sweep(
    database: GraphVizDatabase,
    layer: int = 0,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    queries_per_size: int = 100,
    seed: int = 0,
) -> list[WindowWorkload]:
    """Build the Fig. 3 workload: random windows of each size over one layer."""
    bounds = database.bounds(layer)
    if bounds is None:
        return []
    workloads = []
    for index, size in enumerate(window_sizes):
        windows = random_windows(
            bounds, float(size), count=queries_per_size, seed=seed + index
        )
        workloads.append(WindowWorkload(window_size=size, windows=tuple(windows)))
    return workloads

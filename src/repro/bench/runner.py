"""Experiment harness: regenerate every table and figure of the paper.

Two experiment families are covered:

* :func:`run_table1` — preprocessing time per step (Table I) for the synthetic
  Wikidata-like and Patent-like datasets;
* :func:`run_figure3` — window-query latency breakdown vs window size
  (Fig. 3a / 3b) for one preprocessed dataset.

Absolute numbers differ from the paper (different hardware, different substrate
and dataset scale); the harness reports the same rows/series so the *shape* can
be compared — see EXPERIMENTS.md for the side-by-side discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..client.canvas import ClientCostModel
from ..client.simulator import ClientSimulator
from ..config import GraphVizDBConfig
from ..core.pipeline import PreprocessingPipeline, PreprocessingReport, PreprocessingResult
from ..core.query_manager import QueryManager
from ..graph.generators import patent_like, wikidata_like
from ..graph.model import Graph
from .timing import WindowSizeAggregate, aggregate_timings
from .workloads import PAPER_WINDOW_SIZES, window_size_sweep

__all__ = [
    "Figure3Series",
    "Table1Result",
    "build_benchmark_datasets",
    "run_table1",
    "run_figure3",
]


@dataclass
class Table1Result:
    """Table I rows for the benchmarked datasets."""

    reports: dict[str, PreprocessingReport] = field(default_factory=dict)
    results: dict[str, PreprocessingResult] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        """Return one dictionary per dataset in the paper's column order."""
        table_rows = []
        for name, report in self.reports.items():
            row: dict[str, object] = {
                "dataset": name,
                "edges": report.num_edges,
                "nodes": report.num_nodes,
            }
            for step in range(1, 6):
                row[f"step{step}_s"] = report.step(step).seconds
            row["total_s"] = report.total_seconds
            row["parallel_step5_s"] = report.parallel_step5_seconds()
            table_rows.append(row)
        return table_rows


@dataclass
class Figure3Series:
    """The Fig. 3 series for one dataset: one aggregate per window size."""

    dataset: str
    points: list[WindowSizeAggregate] = field(default_factory=list)

    def series(self, key: str) -> list[float]:
        """Return one named series across window sizes (e.g. ``"total_ms"``)."""
        return [float(point.as_dict()[key]) for point in self.points]

    def window_sizes(self) -> list[int]:
        """Return the x-axis (window edge length in pixels)."""
        return [point.window_size for point in self.points]


def build_benchmark_datasets(scale: float = 1.0) -> dict[str, Graph]:
    """Create the scaled-down Wikidata-like and Patent-like benchmark graphs.

    ``scale`` multiplies the default node counts; the defaults keep a full
    Table I + Fig. 3 run in the low tens of seconds on a laptop.  The relative
    character of the two paper datasets is preserved: the Wikidata-like graph
    has more nodes (entities plus degree-1 literals, edges slightly outnumber
    nodes) while the Patent-like graph is smaller but much denser (average
    degree ~8.5), which is what drives the Step-1 timing inversion of Table I.
    """
    num_entities = max(200, int(2200 * scale))
    num_patents = max(200, int(4000 * scale))
    return {
        "wikidata-like": wikidata_like(
            num_entities=num_entities, literals_per_entity=1.2, links_per_entity=1.1
        ),
        "patent-like": patent_like(num_patents=num_patents),
    }


def run_table1(
    datasets: dict[str, Graph] | None = None,
    config: GraphVizDBConfig | None = None,
    scale: float = 1.0,
) -> Table1Result:
    """Run preprocessing on every dataset and collect the per-step timings."""
    datasets = datasets or build_benchmark_datasets(scale=scale)
    config = config or GraphVizDBConfig.benchmark()
    result = Table1Result()
    pipeline = PreprocessingPipeline(config)
    for name, graph in datasets.items():
        preprocessing = pipeline.run(graph)
        result.reports[name] = preprocessing.report
        result.results[name] = preprocessing
    return result


def run_figure3(
    preprocessing: PreprocessingResult,
    dataset_name: str,
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
    queries_per_size: int = 100,
    cost_model: ClientCostModel | None = None,
    layer: int = 0,
    seed: int = 0,
) -> Figure3Series:
    """Run the Fig. 3 window-query sweep against one preprocessed dataset.

    Queries are evaluated on layer 0 (the full graph), as in the paper, unless
    ``layer`` overrides it.
    """
    query_manager = QueryManager(preprocessing.database)
    simulator = ClientSimulator(query_manager, cost_model=cost_model)
    series = Figure3Series(dataset=dataset_name)
    workloads = window_size_sweep(
        preprocessing.database,
        layer=layer,
        window_sizes=window_sizes,
        queries_per_size=queries_per_size,
        seed=seed,
    )
    for workload in workloads:
        timings = [
            simulator.execute_window(window, layer=layer) for window in workload.windows
        ]
        series.points.append(aggregate_timings(workload.window_size, timings))
    return series

"""Benchmark harness: workloads, timing aggregation, experiment runners and reports."""

from .reporting import format_comparison, format_figure3, format_table1
from .runner import (
    Figure3Series,
    Table1Result,
    build_benchmark_datasets,
    run_figure3,
    run_table1,
)
from .timing import WindowSizeAggregate, aggregate_timings
from .traces import exploration_trace, panning_trace
from .workloads import (
    PAPER_WINDOW_SIZES,
    WindowWorkload,
    random_windows,
    window_size_sweep,
)

__all__ = [
    "format_comparison",
    "format_figure3",
    "format_table1",
    "Figure3Series",
    "Table1Result",
    "build_benchmark_datasets",
    "run_figure3",
    "run_table1",
    "WindowSizeAggregate",
    "aggregate_timings",
    "exploration_trace",
    "panning_trace",
    "PAPER_WINDOW_SIZES",
    "WindowWorkload",
    "random_windows",
    "window_size_sweep",
]

"""Plain-text reporting of benchmark results.

The harness prints the same rows (Table I) and series (Fig. 3) the paper
reports, formatted as fixed-width text tables so they can be diffed or pasted
into EXPERIMENTS.md.
"""

from __future__ import annotations

from .runner import Figure3Series, Table1Result

__all__ = ["format_table1", "format_figure3", "format_comparison"]


def _format_row(values: list[str], widths: list[int]) -> str:
    return "  ".join(value.rjust(width) for value, width in zip(values, widths))


def format_table1(result: Table1Result, unit: str = "s") -> str:
    """Render Table I ("Time for each Preprocessing Step").

    ``unit`` is ``"s"`` (seconds, default for the scaled datasets) or ``"min"``
    to match the paper's unit exactly.
    """
    divisor = 60.0 if unit == "min" else 1.0
    headers = ["Dataset", "#Edges", "#Nodes", "Step 1", "Step 2", "Step 3", "Step 4", "Step 5", "Total"]
    rows: list[list[str]] = [headers]
    for row in result.rows():
        rows.append([
            str(row["dataset"]),
            str(row["edges"]),
            str(row["nodes"]),
            *(f"{float(row[f'step{step}_s']) / divisor:.2f}" for step in range(1, 6)),
            f"{float(row['total_s']) / divisor:.2f}",
        ])
    widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
    lines = [f"Table I: Time for each Preprocessing Step ({unit})"]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_figure3(series: Figure3Series) -> str:
    """Render one Fig. 3 panel (time breakdown vs window size) as a text table."""
    headers = [
        "Window", "Total(ms)", "Comm+Rend(ms)", "BuildJSON(ms)", "DBQuery(ms)", "Nodes+Edges",
    ]
    rows: list[list[str]] = [headers]
    for point in series.points:
        rows.append([
            f"{point.window_size}^2",
            f"{point.total_ms:.1f}",
            f"{point.communication_rendering_ms:.1f}",
            f"{point.json_build_ms:.1f}",
            f"{point.db_query_ms:.1f}",
            f"{point.avg_objects:.1f}",
        ])
    widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
    lines = [f"Figure 3: Time vs Window Size — {series.dataset}"]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def format_comparison(label: str, paper_value: str, measured_value: str, holds: bool) -> str:
    """One line of the paper-vs-measured comparison used in EXPERIMENTS.md."""
    status = "OK" if holds else "DIFFERS"
    return f"[{status}] {label}: paper={paper_value} measured={measured_value}"

"""Storage engine: paper-schema layer tables, indexes and persistence backends."""

from .database import GraphVizDatabase
from .schema import COLUMNS, EdgeRow, rows_from_graph
from .serialization import decode_row, encode_row, read_rows, write_rows
from .sqlite_backend import load_from_sqlite, save_to_sqlite
from .table import FileRowStore, LayerTable, MemoryRowStore

__all__ = [
    "GraphVizDatabase",
    "COLUMNS",
    "EdgeRow",
    "rows_from_graph",
    "decode_row",
    "encode_row",
    "read_rows",
    "write_rows",
    "load_from_sqlite",
    "save_to_sqlite",
    "FileRowStore",
    "LayerTable",
    "MemoryRowStore",
]

"""SQLite persistence for graphVizdb databases.

The original system stores everything in MySQL.  For deployments that want a
durable single-file database instead of the in-memory/file row stores, this
module round-trips a :class:`~repro.storage.database.GraphVizDatabase` to SQLite
(standard library ``sqlite3``), one table per layer with exactly the paper's
six-attribute schema.  On load, the in-memory indexes (R-tree, B+-trees, tries)
are rebuilt, mirroring how MySQL materialises its indexes from the table data.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from ..config import StorageConfig
from ..errors import StorageError
from .database import GraphVizDatabase
from .schema import EdgeRow

__all__ = ["save_to_sqlite", "load_from_sqlite"]

_CREATE_META = """
CREATE TABLE IF NOT EXISTS graphvizdb_meta (
    key TEXT PRIMARY KEY,
    value TEXT
)
"""

_CREATE_LAYER = """
CREATE TABLE IF NOT EXISTS layer_{layer} (
    row_id INTEGER PRIMARY KEY,
    node1_id INTEGER NOT NULL,
    node1_label TEXT NOT NULL,
    edge_geometry BLOB NOT NULL,
    edge_label TEXT NOT NULL,
    node2_id INTEGER NOT NULL,
    node2_label TEXT NOT NULL
)
"""

_CREATE_LAYER_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node1 ON layer_{layer}(node1_id)",
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node2 ON layer_{layer}(node2_id)",
)


def save_to_sqlite(database: GraphVizDatabase, path: str | Path) -> None:
    """Persist every layer of ``database`` into a SQLite file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with sqlite3.connect(path) as connection:
        cursor = connection.cursor()
        cursor.execute(_CREATE_META)
        cursor.execute(
            "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
            ("name", database.name),
        )
        cursor.execute(
            "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
            ("layers", ",".join(str(layer) for layer in database.layers())),
        )
        for layer in database.layers():
            cursor.execute(_CREATE_LAYER.format(layer=layer))
            for statement in _CREATE_LAYER_INDEXES:
                cursor.execute(statement.format(layer=layer))
            cursor.execute(f"DELETE FROM layer_{layer}")
            cursor.executemany(
                f"INSERT INTO layer_{layer} VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    (
                        row.row_id,
                        row.node1_id,
                        row.node1_label,
                        row.edge_geometry,
                        row.edge_label,
                        row.node2_id,
                        row.node2_label,
                    )
                    for row in database.table(layer).scan()
                ),
            )
        connection.commit()


def load_from_sqlite(path: str | Path, config: StorageConfig | None = None) -> GraphVizDatabase:
    """Load a SQLite file written by :func:`save_to_sqlite` and rebuild indexes."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"SQLite database {path} does not exist")
    config = config or StorageConfig()
    with sqlite3.connect(path) as connection:
        cursor = connection.cursor()
        try:
            cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'name'")
        except sqlite3.OperationalError as exc:
            raise StorageError(f"{path} is not a graphVizdb SQLite database") from exc
        name_row = cursor.fetchone()
        cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'layers'")
        layers_row = cursor.fetchone()
        database = GraphVizDatabase(name=name_row[0] if name_row else "", config=config)
        if not layers_row or not layers_row[0]:
            return database
        for layer_text in layers_row[0].split(","):
            layer = int(layer_text)
            cursor.execute(
                f"SELECT row_id, node1_id, node1_label, edge_geometry, edge_label, "
                f"node2_id, node2_label FROM layer_{layer} ORDER BY row_id"
            )
            rows = [
                EdgeRow(
                    row_id=record[0],
                    node1_id=record[1],
                    node1_label=record[2],
                    edge_geometry=record[3],
                    edge_label=record[4],
                    node2_id=record[5],
                    node2_label=record[6],
                )
                for record in cursor.fetchall()
            ]
            database.load_layer(layer, rows)
    return database

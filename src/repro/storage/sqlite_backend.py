"""SQLite persistence for graphVizdb databases.

The original system stores everything in MySQL.  For deployments that want a
durable single-file database instead of the in-memory/file row stores, this
module round-trips a :class:`~repro.storage.database.GraphVizDatabase` to SQLite
(standard library ``sqlite3``), one table per layer with exactly the paper's
six-attribute schema.

The paper's offline preprocessing exists so the online system never pays
indexing cost at query time; accordingly, opening a preprocessed database is a
*deserialisation* problem here, not an indexing problem.  ``save_to_sqlite``
persists each layer's packed spatial index as a versioned BLOB page in
``layer_index_pages`` alongside a fingerprint of the layer's row content;
``load_from_sqlite`` restores the index from that page with a flat
``frombytes`` copy and installs it via
:meth:`~repro.storage.table.LayerTable.attach_packed_index`, falling back to a
full rebuild from rows when pages are absent, stale (fingerprint mismatch) or
version-incompatible.  Secondary indexes (B+-trees, tries) are not persisted at
all — with ``StorageConfig.lazy_secondary_indexes`` they are built on first
use, so a window-query-only workload never pays for them.  See
``docs/persistence.md`` for the on-disk format.
"""

from __future__ import annotations

import sqlite3
from contextlib import closing
from pathlib import Path

from ..config import StorageConfig
from ..errors import SpatialIndexError, StorageError
from ..spatial.packed_rtree import PACKED_PAGE_VERSION, PackedRTree
from .database import GraphVizDatabase
from .schema import EdgeRow
from .serialization import RowContentHasher

__all__ = ["save_to_sqlite", "load_from_sqlite"]

#: Rows fetched per cursor round-trip when loading a layer.
_FETCH_CHUNK = 4096

#: ``layer_index_pages.kind`` value for the packed spatial index page.
_PACKED_KIND = "packed_rtree"

_CREATE_META = """
CREATE TABLE IF NOT EXISTS graphvizdb_meta (
    key TEXT PRIMARY KEY,
    value TEXT
)
"""

_CREATE_LAYER = """
CREATE TABLE IF NOT EXISTS layer_{layer} (
    row_id INTEGER PRIMARY KEY,
    node1_id INTEGER NOT NULL,
    node1_label TEXT NOT NULL,
    edge_geometry BLOB NOT NULL,
    edge_label TEXT NOT NULL,
    node2_id INTEGER NOT NULL,
    node2_label TEXT NOT NULL
)
"""

_CREATE_LAYER_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node1 ON layer_{layer}(node1_id)",
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node2 ON layer_{layer}(node2_id)",
)

_CREATE_PAGES = """
CREATE TABLE IF NOT EXISTS layer_index_pages (
    layer INTEGER NOT NULL,
    kind TEXT NOT NULL,
    version INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (layer, kind)
)
"""

_SELECT_ROWS = (
    "SELECT row_id, node1_id, node1_label, edge_geometry, edge_label, "
    "node2_id, node2_label FROM layer_{layer} ORDER BY row_id"
)


def save_to_sqlite(database: GraphVizDatabase, path: str | Path) -> None:
    """Persist every layer of ``database`` into a SQLite file at ``path``.

    Rows are written in one transaction per call (WAL journal,
    ``synchronous=NORMAL``) with a single ``executemany`` per layer.  When the
    layer's active spatial index is a packed tree and
    ``database.config.index_pages`` is on, the index is serialised into
    ``layer_index_pages`` together with the fingerprint of the rows it covers,
    so the next :func:`load_from_sqlite` can skip the re-pack entirely.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with closing(sqlite3.connect(path)) as connection:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        with connection:  # one transaction for the whole save
            cursor = connection.cursor()
            cursor.execute(_CREATE_META)
            cursor.execute(_CREATE_PAGES)
            cursor.execute(
                "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
                ("name", database.name),
            )
            cursor.execute(
                "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
                ("layers", ",".join(str(layer) for layer in database.layers())),
            )
            for layer in database.layers():
                cursor.execute(_CREATE_LAYER.format(layer=layer))
                for statement in _CREATE_LAYER_INDEXES:
                    cursor.execute(statement.format(layer=layer))
                cursor.execute(f"DELETE FROM layer_{layer}")
                cursor.execute(
                    "DELETE FROM layer_index_pages WHERE layer = ?", (layer,)
                )
                table = database.table(layer)
                hasher = RowContentHasher()

                def records():
                    for row in table.scan():
                        record = row.to_record()
                        hasher.update(record)
                        yield record

                cursor.executemany(
                    f"INSERT INTO layer_{layer} VALUES (?, ?, ?, ?, ?, ?, ?)",
                    records(),
                )
                _save_index_page(cursor, database, layer, hasher)


def _save_index_page(
    cursor: sqlite3.Cursor,
    database: GraphVizDatabase,
    layer: int,
    hasher: RowContentHasher,
) -> None:
    """Persist the layer's packed index page, if one can be written.

    Skipped when pages are disabled, when the table runs the dynamic R-tree
    (e.g. after Edit-panel mutations demoted it — ``repack()`` first to get
    the page back), or when the index cannot be serialised; the loader then
    simply rebuilds from rows.
    """
    if not database.config.index_pages:
        return
    tree = database.table(layer).rtree
    if not isinstance(tree, PackedRTree) or len(tree) != hasher.count:
        return
    try:
        payload = tree.to_bytes()
    except SpatialIndexError:
        return
    cursor.execute(
        "INSERT OR REPLACE INTO layer_index_pages(layer, kind, version, "
        "fingerprint, payload) VALUES (?, ?, ?, ?, ?)",
        (layer, _PACKED_KIND, PACKED_PAGE_VERSION, hasher.hexdigest(), payload),
    )


def _load_index_pages(cursor: sqlite3.Cursor) -> dict[int, tuple[int, str, bytes]]:
    """Read every current-version packed-index page, keyed by layer.

    Version-incompatible pages are filtered out here so the row loop never
    bothers fingerprinting a layer whose page is doomed anyway.  Databases
    written before pages existed have no ``layer_index_pages`` table; they
    load fine through the rebuild path.
    """
    try:
        cursor.execute(
            "SELECT layer, version, fingerprint, payload FROM layer_index_pages "
            "WHERE kind = ? AND version = ?",
            (_PACKED_KIND, PACKED_PAGE_VERSION),
        )
    except sqlite3.OperationalError:
        return {}
    return {
        record[0]: (record[1], record[2], record[3]) for record in cursor.fetchall()
    }


def _restore_packed_index(
    page: tuple[int, str, bytes] | None,
    fingerprint: str,
    num_rows: int,
) -> PackedRTree | None:
    """Deserialise a page when it is present, current and content-matched."""
    if page is None:
        return None
    version, page_fingerprint, payload = page
    if version != PACKED_PAGE_VERSION or page_fingerprint != fingerprint:
        return None
    try:
        tree = PackedRTree.from_bytes(payload)
    except SpatialIndexError:
        return None
    if len(tree) != num_rows:
        return None
    return tree


def load_from_sqlite(path: str | Path, config: StorageConfig | None = None) -> GraphVizDatabase:
    """Load a SQLite file written by :func:`save_to_sqlite`.

    Cold start is I/O-bound by design: rows stream in chunked batches off a
    single ordered SELECT per layer, and when a valid packed-index page exists
    the spatial index is restored with a flat ``frombytes`` copy instead of an
    O(n log n) re-pack.  The rebuild path remains as the fallback for missing,
    stale or version-mismatched pages (and for ``index_kind="rtree"`` or
    ``index_pages=False`` configurations).
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"SQLite database {path} does not exist")
    config = config or StorageConfig()
    restore_wanted = config.index_pages and config.index_kind == "packed"
    with closing(sqlite3.connect(path)) as connection:
        cursor = connection.cursor()
        try:
            cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'name'")
        except sqlite3.OperationalError as exc:
            raise StorageError(f"{path} is not a graphVizdb SQLite database") from exc
        name_row = cursor.fetchone()
        cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'layers'")
        layers_row = cursor.fetchone()
        database = GraphVizDatabase(name=name_row[0] if name_row else "", config=config)
        if not layers_row or not layers_row[0]:
            return database
        pages = _load_index_pages(cursor) if restore_wanted else {}
        from_record = EdgeRow.from_record
        for layer_text in layers_row[0].split(","):
            layer = int(layer_text)
            page = pages.get(layer)
            cursor.execute(_SELECT_ROWS.format(layer=layer))
            rows: list[EdgeRow] = []
            append = rows.append
            hasher = RowContentHasher() if page is not None else None
            while True:
                chunk = cursor.fetchmany(_FETCH_CHUNK)
                if not chunk:
                    break
                if hasher is not None:
                    update = hasher.update
                    for record in chunk:
                        update(record)
                        append(from_record(record))
                else:
                    for record in chunk:
                        append(from_record(record))
            tree = (
                _restore_packed_index(page, hasher.hexdigest(), len(rows))
                if hasher is not None
                else None
            )
            if tree is not None:
                database.create_layer(layer).attach_packed_index(tree, rows=rows)
            else:
                database.load_layer(layer, rows)
    return database

"""SQLite persistence for graphVizdb databases.

The original system stores everything in MySQL.  For deployments that want a
durable single-file database instead of the in-memory/file row stores, this
module round-trips a :class:`~repro.storage.database.GraphVizDatabase` to SQLite
(standard library ``sqlite3``), one table per layer with exactly the paper's
six-attribute schema.

The paper's offline preprocessing exists so the online system never pays
indexing cost at query time; accordingly, opening a preprocessed database is a
*deserialisation* problem here, not an indexing problem.  ``save_to_sqlite``
persists each layer's packed spatial index as a versioned BLOB page in
``layer_index_pages`` alongside a fingerprint of the layer's row content;
``load_from_sqlite`` restores the index from that page with a flat
``frombytes`` copy and installs it via
:meth:`~repro.storage.table.LayerTable.attach_packed_index`, falling back to a
full rebuild from rows when pages are absent, stale (fingerprint mismatch) or
version-incompatible.  Secondary indexes (B+-trees, tries) are not persisted at
all — with ``StorageConfig.lazy_secondary_indexes`` they are built on first
use, so a window-query-only workload never pays for them.  See
``docs/persistence.md`` for the on-disk format.
"""

from __future__ import annotations

import sqlite3
from contextlib import closing
from pathlib import Path

from ..config import StorageConfig
from ..errors import SpatialIndexError, StorageError
from ..spatial.packed_rtree import PACKED_PAGE_VERSION, PackedRTree
from .database import GraphVizDatabase
from .schema import EdgeRow
from .secondary_pages import (
    LABEL_TRIE_KIND,
    NODE_BTREE_KIND,
    SECONDARY_PAGE_VERSION,
    encode_label_tries,
    encode_node_btrees,
)
from .serialization import RowContentHasher

__all__ = ["save_to_sqlite", "load_from_sqlite", "read_meta_value"]

#: Rows fetched per cursor round-trip when loading a layer.
_FETCH_CHUNK = 4096

#: ``layer_index_pages.kind`` value for the packed spatial index page.
_PACKED_KIND = "packed_rtree"

_CREATE_META = """
CREATE TABLE IF NOT EXISTS graphvizdb_meta (
    key TEXT PRIMARY KEY,
    value TEXT
)
"""

_CREATE_LAYER = """
CREATE TABLE IF NOT EXISTS layer_{layer} (
    row_id INTEGER PRIMARY KEY,
    node1_id INTEGER NOT NULL,
    node1_label TEXT NOT NULL,
    edge_geometry BLOB NOT NULL,
    edge_label TEXT NOT NULL,
    node2_id INTEGER NOT NULL,
    node2_label TEXT NOT NULL
)
"""

_CREATE_LAYER_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node1 ON layer_{layer}(node1_id)",
    "CREATE INDEX IF NOT EXISTS idx_layer_{layer}_node2 ON layer_{layer}(node2_id)",
)

_CREATE_PAGES = """
CREATE TABLE IF NOT EXISTS layer_index_pages (
    layer INTEGER NOT NULL,
    kind TEXT NOT NULL,
    version INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (layer, kind)
)
"""

_SELECT_ROWS = (
    "SELECT row_id, node1_id, node1_label, edge_geometry, edge_label, "
    "node2_id, node2_label FROM layer_{layer} ORDER BY row_id"
)


def save_to_sqlite(
    database: GraphVizDatabase,
    path: str | Path,
    extra_meta: dict[str, str] | None = None,
) -> dict[str, list[int]]:
    """Persist every layer of ``database`` into a SQLite file at ``path``.

    Rows are written in one transaction per call (WAL journal,
    ``synchronous=NORMAL``) with a single ``executemany`` per layer.  When the
    layer's active spatial index is a packed tree and
    ``database.config.index_pages`` is on, the index is serialised into
    ``layer_index_pages`` together with the fingerprint of the rows it covers,
    so the next :func:`load_from_sqlite` can skip the re-pack entirely.
    With ``database.config.secondary_index_pages`` the *built* secondary
    indexes (node B+-trees, label tries) are persisted the same way, so
    keyword-heavy cold starts skip the lazy build-from-store scan too.

    Re-saving over an existing file is **incremental**: each layer's
    :class:`~repro.storage.serialization.RowContentHasher` fingerprint is
    compared against the one recorded at the previous save
    (``fingerprint_layer_{n}`` meta keys), and layers whose content is
    unchanged skip the DELETE + INSERT entirely — after a small edit only the
    touched layers are rewritten.  Returns ``{"written": [...], "skipped":
    [...]}`` naming the layers that were rewritten vs left in place.

    ``extra_meta`` key/value pairs are written into ``graphvizdb_meta``
    inside the same transaction — the write-ahead journal records its
    checkpoint watermark this way, so the watermark can never name a save
    that did not commit.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written: list[int] = []
    skipped: list[int] = []
    with closing(sqlite3.connect(path)) as connection:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        with connection:  # one transaction for the whole save
            cursor = connection.cursor()
            cursor.execute(_CREATE_META)
            cursor.execute(_CREATE_PAGES)
            previous = _stored_fingerprints(cursor)
            cursor.execute(
                "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
                ("name", database.name),
            )
            cursor.execute(
                "INSERT OR REPLACE INTO graphvizdb_meta(key, value) VALUES (?, ?)",
                ("layers", ",".join(str(layer) for layer in database.layers())),
            )
            for key, value in (extra_meta or {}).items():
                cursor.execute(
                    "INSERT OR REPLACE INTO graphvizdb_meta(key, value) "
                    "VALUES (?, ?)",
                    (str(key), str(value)),
                )
            for layer in database.layers():
                table = database.table(layer)
                # The table's write lock covers the snapshot — hashing, the
                # record materialisation and the index-page serialisation —
                # so the fingerprint always describes exactly the rows and
                # page this save writes; a concurrent edit between the hash
                # pass and the write pass could otherwise pair
                # fingerprint(state A) with rows(state B).  The SQLite disk
                # writes below run *outside* the lock, so saving a large
                # layer does not stall that table's readers for the I/O.
                with table.write_lock:
                    hasher = RowContentHasher()
                    write_layer = True
                    if previous.get(layer) is not None:
                        # A previous save exists: hash first (retaining
                        # nothing) to decide whether the layer can be
                        # skipped; only a genuinely changed layer pays the
                        # second scan that materialises its records.
                        for row in table.scan():
                            hasher.update(row.to_record())
                        fingerprint = hasher.hexdigest()
                        if previous[layer] == fingerprint:
                            # Unchanged since the last save: rows stay, and
                            # any stored page carrying the same fingerprint
                            # stays valid.  Only missing pages (e.g. the
                            # previous save ran while the table was demoted
                            # or before its secondary indexes were built) are
                            # topped up — serialised here, inserted below,
                            # outside the lock.
                            write_layer = False
                            records = []
                            payload = (
                                None
                                if _page_current(
                                    cursor, layer, _PACKED_KIND,
                                    PACKED_PAGE_VERSION, fingerprint,
                                )
                                else _serialise_index_page(database, layer, hasher)
                            )
                            # Like the packed page: consult the stored pages
                            # first and serialise only the missing kinds —
                            # walking the B+-trees and tries on every
                            # incremental save, under the write lock, just to
                            # discard the bytes would stall readers for
                            # nothing.
                            secondary = {}
                            for kind in (NODE_BTREE_KIND, LABEL_TRIE_KIND):
                                if _page_current(
                                    cursor, layer, kind,
                                    SECONDARY_PAGE_VERSION, fingerprint,
                                ):
                                    continue
                                page = _serialise_secondary_page(
                                    database, layer, kind
                                )
                                if page is not None:
                                    secondary[kind] = page
                        else:
                            records = [row.to_record() for row in table.scan()]
                            payload = _serialise_index_page(database, layer, hasher)
                            secondary = _serialise_secondary_pages(database, layer)
                    else:
                        # No previous fingerprint (fresh file or new layer):
                        # the layer is certainly written, so hash while
                        # materialising in a single pass.
                        records = []
                        for row in table.scan():
                            record = row.to_record()
                            hasher.update(record)
                            records.append(record)
                        fingerprint = hasher.hexdigest()
                        payload = _serialise_index_page(database, layer, hasher)
                        secondary = _serialise_secondary_pages(database, layer)
                if not write_layer:
                    skipped.append(layer)
                    if payload is not None:
                        _insert_index_page(
                            cursor, layer, _PACKED_KIND, PACKED_PAGE_VERSION,
                            fingerprint, payload,
                        )
                    for kind, page in secondary.items():
                        _insert_index_page(
                            cursor, layer, kind, SECONDARY_PAGE_VERSION,
                            fingerprint, page,
                        )
                    continue
                cursor.execute(_CREATE_LAYER.format(layer=layer))
                for statement in _CREATE_LAYER_INDEXES:
                    cursor.execute(statement.format(layer=layer))
                cursor.execute(f"DELETE FROM layer_{layer}")
                cursor.execute(
                    "DELETE FROM layer_index_pages WHERE layer = ?", (layer,)
                )
                cursor.executemany(
                    f"INSERT INTO layer_{layer} VALUES (?, ?, ?, ?, ?, ?, ?)",
                    records,
                )
                cursor.execute(
                    "INSERT OR REPLACE INTO graphvizdb_meta(key, value) "
                    "VALUES (?, ?)",
                    (f"fingerprint_layer_{layer}", fingerprint),
                )
                written.append(layer)
                if payload is not None:
                    _insert_index_page(
                        cursor, layer, _PACKED_KIND, PACKED_PAGE_VERSION,
                        fingerprint, payload,
                    )
                for kind, page in secondary.items():
                    _insert_index_page(
                        cursor, layer, kind, SECONDARY_PAGE_VERSION,
                        fingerprint, page,
                    )
    return {"written": written, "skipped": skipped}


def _stored_fingerprints(cursor: sqlite3.Cursor) -> dict[int, str]:
    """Read the per-layer row fingerprints recorded by a previous save.

    A layer's fingerprint only counts when its table actually exists (a
    half-created file must not make the incremental path skip a rewrite).
    """
    cursor.execute(
        "SELECT key, value FROM graphvizdb_meta WHERE key LIKE 'fingerprint_layer_%'"
    )
    fingerprints = {
        int(key.rsplit("_", 1)[1]): value for key, value in cursor.fetchall()
    }
    if not fingerprints:
        return {}
    cursor.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' AND name LIKE 'layer_%'"
    )
    existing = {name for (name,) in cursor.fetchall()}
    return {
        layer: fingerprint
        for layer, fingerprint in fingerprints.items()
        if f"layer_{layer}" in existing
    }


def _serialise_index_page(
    database: GraphVizDatabase, layer: int, hasher: RowContentHasher
) -> bytes | None:
    """Serialise the layer's packed index page, or ``None`` when it cannot be.

    ``None`` when pages are disabled, when the table runs the dynamic R-tree
    (e.g. after Edit-panel mutations demoted it — ``repack()`` first to get
    the page back), or when the index cannot be serialised; the loader then
    simply rebuilds from rows.  Called under the table's write lock so the
    serialised tree matches the hashed rows.
    """
    if not database.config.index_pages:
        return None
    tree = database.table(layer).rtree
    if not isinstance(tree, PackedRTree) or len(tree) != hasher.count:
        return None
    try:
        return tree.to_bytes()
    except SpatialIndexError:
        return None


def _serialise_secondary_page(
    database: GraphVizDatabase, layer: int, kind: str
) -> bytes | None:
    """Serialise one secondary-index page, or ``None`` when it is not *built*.

    Unbuilt (lazy) indexes are not force-built just to persist them — a
    window-only workload stays free of them end to end.  Called under the
    table's write lock so the serialised postings match the hashed rows.
    """
    if not database.config.secondary_index_pages:
        return None
    table = database.table(layer)
    if kind == NODE_BTREE_KIND and table.node_indexes_built:
        return encode_node_btrees(table.node1_index, table.node2_index)
    if kind == LABEL_TRIE_KIND and table.label_indexes_built:
        return encode_label_tries(
            table.node_label_index, table.edge_label_index
        )
    return None


def _serialise_secondary_pages(
    database: GraphVizDatabase, layer: int
) -> dict[str, bytes]:
    """Serialise every built secondary index of the layer (rewrite branches)."""
    pages: dict[str, bytes] = {}
    for kind in (NODE_BTREE_KIND, LABEL_TRIE_KIND):
        page = _serialise_secondary_page(database, layer, kind)
        if page is not None:
            pages[kind] = page
    return pages


def _page_current(
    cursor: sqlite3.Cursor, layer: int, kind: str, version: int, fingerprint: str
) -> bool:
    """``True`` when a current-version page with this fingerprint is stored."""
    cursor.execute(
        "SELECT 1 FROM layer_index_pages WHERE layer = ? AND kind = ? "
        "AND version = ? AND fingerprint = ?",
        (layer, kind, version, fingerprint),
    )
    return cursor.fetchone() is not None


def _insert_index_page(
    cursor: sqlite3.Cursor,
    layer: int,
    kind: str,
    version: int,
    fingerprint: str,
    payload: bytes,
) -> None:
    """Write one serialised index page."""
    cursor.execute(
        "INSERT OR REPLACE INTO layer_index_pages(layer, kind, version, "
        "fingerprint, payload) VALUES (?, ?, ?, ?, ?)",
        (layer, kind, version, fingerprint, payload),
    )


def _load_index_pages(
    cursor: sqlite3.Cursor, kinds: dict[str, int]
) -> dict[int, dict[str, tuple[int, str, bytes]]]:
    """Read every wanted index page: ``layer -> kind -> (version, fp, payload)``.

    ``kinds`` maps each wanted page kind to its current version;
    version-incompatible pages are filtered out here so the row loop never
    bothers fingerprinting a layer whose page is doomed anyway.  Databases
    written before pages existed have no ``layer_index_pages`` table; they
    load fine through the rebuild path.
    """
    if not kinds:
        return {}
    try:
        cursor.execute(
            "SELECT layer, kind, version, fingerprint, payload "
            "FROM layer_index_pages WHERE kind IN ({})".format(
                ",".join("?" for _ in kinds)
            ),
            tuple(kinds),
        )
    except sqlite3.OperationalError:
        return {}
    pages: dict[int, dict[str, tuple[int, str, bytes]]] = {}
    for layer, kind, version, fingerprint, payload in cursor.fetchall():
        if version != kinds[kind]:
            continue
        pages.setdefault(layer, {})[kind] = (version, fingerprint, payload)
    return pages


def _restore_packed_index(
    page: tuple[int, str, bytes] | None,
    fingerprint: str,
    num_rows: int,
) -> PackedRTree | None:
    """Deserialise a page when it is present, current and content-matched."""
    if page is None:
        return None
    version, page_fingerprint, payload = page
    if version != PACKED_PAGE_VERSION or page_fingerprint != fingerprint:
        return None
    try:
        tree = PackedRTree.from_bytes(payload)
    except SpatialIndexError:
        return None
    if len(tree) != num_rows:
        return None
    return tree


def load_from_sqlite(path: str | Path, config: StorageConfig | None = None) -> GraphVizDatabase:
    """Load a SQLite file written by :func:`save_to_sqlite`.

    Cold start is I/O-bound by design: rows stream in chunked batches off a
    single ordered SELECT per layer, and when a valid packed-index page exists
    the spatial index is restored with a flat ``frombytes`` copy instead of an
    O(n log n) re-pack.  Persisted secondary-index pages (node B+-trees,
    label tries) are staged on the tables and consumed by the lazy
    build-on-first-use gates, replacing the full store scan.  The rebuild
    path remains as the fallback for missing, stale or version-mismatched
    pages (and for ``index_kind="rtree"`` or ``index_pages=False``
    configurations).
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"SQLite database {path} does not exist")
    config = config or StorageConfig()
    restore_wanted = config.index_pages and config.index_kind == "packed"
    wanted_kinds: dict[str, int] = {}
    if restore_wanted:
        wanted_kinds[_PACKED_KIND] = PACKED_PAGE_VERSION
    if config.secondary_index_pages and config.lazy_secondary_indexes:
        wanted_kinds[NODE_BTREE_KIND] = SECONDARY_PAGE_VERSION
        wanted_kinds[LABEL_TRIE_KIND] = SECONDARY_PAGE_VERSION
    with closing(sqlite3.connect(path)) as connection:
        cursor = connection.cursor()
        try:
            cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'name'")
        except sqlite3.OperationalError as exc:
            raise StorageError(f"{path} is not a graphVizdb SQLite database") from exc
        name_row = cursor.fetchone()
        cursor.execute("SELECT value FROM graphvizdb_meta WHERE key = 'layers'")
        layers_row = cursor.fetchone()
        database = GraphVizDatabase(name=name_row[0] if name_row else "", config=config)
        if not layers_row or not layers_row[0]:
            return database
        pages = _load_index_pages(cursor, wanted_kinds)
        from_record = EdgeRow.from_record
        for layer_text in layers_row[0].split(","):
            layer = int(layer_text)
            layer_pages = pages.get(layer, {})
            page = layer_pages.get(_PACKED_KIND)
            cursor.execute(_SELECT_ROWS.format(layer=layer))
            rows: list[EdgeRow] = []
            append = rows.append
            hasher = RowContentHasher() if layer_pages else None
            while True:
                chunk = cursor.fetchmany(_FETCH_CHUNK)
                if not chunk:
                    break
                if hasher is not None:
                    update = hasher.update
                    for record in chunk:
                        update(record)
                        append(from_record(record))
                else:
                    for record in chunk:
                        append(from_record(record))
            fingerprint = hasher.hexdigest() if hasher is not None else ""
            tree = (
                _restore_packed_index(page, fingerprint, len(rows))
                if page is not None
                else None
            )
            if tree is not None:
                table = database.create_layer(layer)
                table.attach_packed_index(tree, rows=rows)
            else:
                database.load_layer(layer, rows)
                table = database.table(layer)
            node_page = _secondary_payload(
                layer_pages.get(NODE_BTREE_KIND), fingerprint
            )
            label_page = _secondary_payload(
                layer_pages.get(LABEL_TRIE_KIND), fingerprint
            )
            if node_page is not None or label_page is not None:
                table.attach_secondary_pages(node_page, label_page)
    return database


def _secondary_payload(
    page: tuple[int, str, bytes] | None, fingerprint: str
) -> bytes | None:
    """A secondary page's payload when its fingerprint matches the loaded rows."""
    if page is None:
        return None
    _, page_fingerprint, payload = page
    return payload if page_fingerprint == fingerprint else None


def read_meta_value(path: str | Path, key: str) -> str | None:
    """Read one ``graphvizdb_meta`` value from a dataset file (``None``: absent).

    Used by the write-ahead journal to find the checkpoint watermark without
    paying for a full :func:`load_from_sqlite`.
    """
    path = Path(path)
    if not path.exists():
        return None
    with closing(sqlite3.connect(path)) as connection:
        try:
            cursor = connection.execute(
                "SELECT value FROM graphvizdb_meta WHERE key = ?", (key,)
            )
        except sqlite3.OperationalError:
            return None
        record = cursor.fetchone()
    return record[0] if record else None

"""The paper's storage scheme.

"Our database includes a single relational table per abstraction layer ...
Intuitively, each graph is stored as a set of triples of the form
(node1, edge, node2)."  A row carries six attributes (Fig. 2 of the paper):

1. ``Node1 ID``    (int,  B-tree indexed)
2. ``Node1 Label`` (text, full-text indexed)
3. ``Edge Geometry`` (binary geometry, R-tree indexed)
4. ``Edge Label``  (text, full-text indexed)
5. ``Node2 ID``    (int,  B-tree indexed)
6. ``Node2 Label`` (text, full-text indexed)

For directed edges node1 is the source and node2 the target; the direction is
encoded in the geometry blob.  Isolated nodes (no incident edges) are stored as
self-rows with a zero-length geometry so they remain visible on the canvas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.model import Edge, Graph
from ..layout.base import Layout
from ..spatial.geometry import LineSegment, Point, Rect, decode_segment, encode_segment

__all__ = ["EdgeRow", "rows_from_graph", "COLUMNS"]

#: Column names in storage order, matching Fig. 2 of the paper.
COLUMNS = (
    "node1_id",
    "node1_label",
    "edge_geometry",
    "edge_label",
    "node2_id",
    "node2_label",
)


@dataclass(frozen=True)
class EdgeRow:
    """One row of a layer table: a (node1, edge, node2) triple plus its geometry.

    ``row_id`` is a surrogate key assigned by the table; it is what the B+-tree
    and R-tree indexes reference.
    """

    row_id: int
    node1_id: int
    node1_label: str
    edge_geometry: bytes
    edge_label: str
    node2_id: int
    node2_label: str

    # ----------------------------------------------------------- geometry view

    def segment(self) -> LineSegment:
        """Decode the stored geometry blob."""
        return decode_segment(self.edge_geometry)

    def bounding_rect(self) -> Rect:
        """Return the bounding rectangle of the edge geometry."""
        return self.segment().bounding_rect()

    def is_node_row(self) -> bool:
        """Return ``True`` if this row represents an isolated node (self-row)."""
        return self.node1_id == self.node2_id and self.edge_label == ""

    def endpoints(self) -> tuple[Point, Point]:
        """Return the (source, target) coordinates encoded in the geometry."""
        segment = self.segment()
        return segment.start, segment.end

    def to_record(self) -> tuple:
        """Return the row as a flat tuple: ``row_id`` followed by :data:`COLUMNS`.

        This is the canonical wire order shared by the SQLite backend's
        INSERT/SELECT statements and the row-content fingerprint
        (:class:`repro.storage.serialization.RowContentHasher`).
        """
        return (
            self.row_id,
            self.node1_id,
            self.node1_label,
            self.edge_geometry,
            self.edge_label,
            self.node2_id,
            self.node2_label,
        )

    @classmethod
    def from_record(cls, record: tuple) -> "EdgeRow":
        """Build a row from a :meth:`to_record` tuple (dataclass field order)."""
        return cls(*record)

    def as_dict(self) -> dict[str, object]:
        """Return the row as a plain dictionary (geometry kept as bytes)."""
        return {
            "row_id": self.row_id,
            "node1_id": self.node1_id,
            "node1_label": self.node1_label,
            "edge_geometry": self.edge_geometry,
            "edge_label": self.edge_label,
            "node2_id": self.node2_id,
            "node2_label": self.node2_label,
        }


def _edge_row(
    row_id: int, graph: Graph, edge: Edge, layout: Layout, directed: bool
) -> EdgeRow:
    source_node = graph.node(edge.source)
    target_node = graph.node(edge.target)
    segment = LineSegment(
        layout.position(edge.source), layout.position(edge.target), directed=directed
    )
    return EdgeRow(
        row_id=row_id,
        node1_id=edge.source,
        node1_label=source_node.label,
        edge_geometry=encode_segment(segment),
        edge_label=edge.label,
        node2_id=edge.target,
        node2_label=target_node.label,
    )


def rows_from_graph(graph: Graph, layout: Layout, start_row_id: int = 0) -> list[EdgeRow]:
    """Convert a laid-out graph into the list of rows of its layer table.

    Every edge becomes one row.  Nodes without any incident edge become
    self-rows (``node1 == node2``, empty edge label, zero-length geometry) so
    that window queries still return them.
    """
    rows: list[EdgeRow] = []
    row_id = start_row_id
    covered: set[int] = set()
    for edge in graph.edges():
        rows.append(_edge_row(row_id, graph, edge, layout, graph.directed))
        covered.add(edge.source)
        covered.add(edge.target)
        row_id += 1
    for node_id in sorted(graph.node_ids()):
        if node_id in covered:
            continue
        node = graph.node(node_id)
        point = layout.position(node_id)
        segment = LineSegment(point, point, directed=False)
        rows.append(
            EdgeRow(
                row_id=row_id,
                node1_id=node_id,
                node1_label=node.label,
                edge_geometry=encode_segment(segment),
                edge_label="",
                node2_id=node_id,
                node2_label=node.label,
            )
        )
        row_id += 1
    return rows

"""Layer tables: one indexed table per abstraction layer.

A :class:`LayerTable` stores the rows of one layer together with the indexes the
paper builds on them (Fig. 2):

* B+-trees on ``node1_id`` and ``node2_id``;
* full-text (trie) indexes on ``node1_label``, ``edge_label`` and ``node2_label``;
* an R-tree on the edge geometries.

Two row stores are available: :class:`MemoryRowStore` (default) and
:class:`FileRowStore`, which persists rows in the binary record format and keeps
only the indexes in memory — the configuration the paper's "extremely low ...
memory requirements" claim corresponds to.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import StorageError
from ..spatial.btree import BPlusTree
from ..spatial.geometry import LineSegment, Point, Rect
from ..spatial.packed_rtree import PackedRTree
from ..spatial.rtree import RTree
from ..spatial.trie import FullTextIndex
from .schema import EdgeRow
from .serialization import read_rows, write_rows

__all__ = ["MemoryRowStore", "FileRowStore", "LayerTable", "LRUCache", "CacheFillGuard"]


class CacheFillGuard(dict):
    """A write-guarded view of one table cache for payload builders.

    Subclasses ``dict`` (empty) purely so ``build_payload``'s
    ``isinstance(fragments, dict)`` fast path takes it; ``get`` reads the
    real cache and ``__setitem__`` routes through the table's
    generation-checked :meth:`LayerTable._cache_put`, dropping fills that a
    concurrent mutation has made stale.  The generation is captured at
    construction — create the guard *before* fetching the rows it will be
    used with.
    """

    __slots__ = ("_table", "_cache", "_generation")

    def __init__(self, table: "LayerTable", cache: "LRUCache") -> None:
        super().__init__()
        self._table = table
        self._cache = cache
        self._generation = table._cache_generation

    def get(self, key, default=None):
        return self._cache.get(key, default)

    def __setitem__(self, key, value) -> None:
        self._table._cache_put(self._generation, self._cache, key, value)

class LRUCache(dict):
    """A ``dict`` bounded by write-time LRU eviction.

    Subclasses ``dict`` (rather than wrapping one) so the zero-copy payload
    builder's ``isinstance(fragments, dict)`` fast path keeps working when a
    table's fragment cache is bounded.  ``capacity <= 0`` disables eviction,
    reducing the cache to a plain dict.

    Reads (``get`` / ``[]``) are *not* overridden: the per-row caches sit on
    the hottest query paths, and replacing the C-level ``dict.get`` with a
    Python method measurably taxes every warm window query.  Recency is
    therefore tracked on writes only — eviction order is dict insertion
    order, and a write to an existing key re-inserts it at the back.  An
    entry that is evicted while still hot is simply re-cached on its next
    miss, so this approximates LRU without touching the read path.
    """

    __slots__ = ("capacity",)

    def __init__(self, capacity: int = 0) -> None:
        super().__init__()
        self.capacity = capacity

    def __setitem__(self, key, value) -> None:
        if self.capacity > 0:
            if dict.__contains__(self, key):
                dict.pop(self, key, None)
            elif len(self) >= self.capacity:
                # Concurrent readers may race this eviction (the per-row caches
                # are written from query threads without a lock); pop-with-
                # default and the StopIteration guard make a lost race a no-op
                # instead of a KeyError escaping into a window query.
                try:
                    dict.pop(self, next(iter(self)), None)
                except (StopIteration, RuntimeError):
                    pass
        dict.__setitem__(self, key, value)


class MemoryRowStore:
    """Row store keeping every row in a Python dict (fastest, most memory)."""

    def __init__(self) -> None:
        self._rows: dict[int, EdgeRow] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def put(self, row: EdgeRow) -> None:
        """Insert or replace a row."""
        self._rows[row.row_id] = row

    def get(self, row_id: int) -> EdgeRow:
        """Fetch a row by id."""
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(f"row {row_id} does not exist") from None

    def contains(self, row_id: int) -> bool:
        """Return ``True`` if a row with this id is stored."""
        return row_id in self._rows

    def delete(self, row_id: int) -> None:
        """Delete a row by id."""
        if row_id not in self._rows:
            raise StorageError(f"row {row_id} does not exist")
        del self._rows[row_id]

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every row (ascending row id)."""
        for row_id in sorted(self._rows):
            yield self._rows[row_id]


class FileRowStore:
    """Row store persisting rows to a binary file, with an in-memory offset map.

    Rows are append-only on disk; deletions and overwrites are recorded in the
    offset map and compacted when :meth:`compact` is called.  This mimics the
    disk-resident behaviour of the original MySQL-backed system: the working set
    in memory is the indexes, not the data.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._offsets: dict[int, int] = {}
        if self.path.exists():
            self._rebuild_offsets()
        else:
            self.path.touch()

    def _rebuild_offsets(self) -> None:
        self._offsets.clear()
        with open(self.path, "rb") as handle:
            while True:
                offset = handle.tell()
                prefix = handle.read(4)
                if not prefix or len(prefix) < 4:
                    break
                length = int.from_bytes(prefix, "little")
                record = handle.read(length)
                if len(record) != length:
                    raise StorageError(f"corrupt row file {self.path}")
                from .serialization import decode_row

                row = decode_row(record)
                self._offsets[row.row_id] = offset

    def __len__(self) -> int:
        return len(self._offsets)

    def put(self, row: EdgeRow) -> None:
        """Append a row and register its offset."""
        with open(self.path, "ab") as handle:
            offset = handle.tell()
            write_rows([row], handle)
        self._offsets[row.row_id] = offset

    def get(self, row_id: int) -> EdgeRow:
        """Read one row from disk."""
        offset = self._offsets.get(row_id)
        if offset is None:
            raise StorageError(f"row {row_id} does not exist")
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            length = int.from_bytes(handle.read(4), "little")
            record = handle.read(length)
        from .serialization import decode_row

        return decode_row(record)

    def contains(self, row_id: int) -> bool:
        """Return ``True`` if a live row with this id is stored."""
        return row_id in self._offsets

    def delete(self, row_id: int) -> None:
        """Drop the row from the offset map (space reclaimed on compaction)."""
        if row_id not in self._offsets:
            raise StorageError(f"row {row_id} does not exist")
        del self._offsets[row_id]

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every live row (ascending row id); random access per row."""
        for row_id in sorted(self._offsets):
            yield self.get(row_id)

    def compact(self) -> None:
        """Rewrite the file keeping only live rows."""
        live = list(self.scan())
        temp_path = self.path.with_suffix(".compact")
        with open(temp_path, "wb") as handle:
            write_rows(live, handle)
        temp_path.replace(self.path)
        self._rebuild_offsets()

    def load_all(self) -> list[EdgeRow]:
        """Read the whole file sequentially (used when rebuilding indexes)."""
        with open(self.path, "rb") as handle:
            return [row for row in read_rows(handle) if row.row_id in self._offsets]


class LayerTable:
    """One abstraction layer's table plus its indexes.

    Parameters
    ----------
    layer:
        Abstraction level this table stores (0 = input graph).
    store:
        Row store; defaults to :class:`MemoryRowStore`.
    rtree_max_entries / btree_order:
        Index tuning knobs (see :class:`repro.config.StorageConfig`).
    index_kind:
        ``"rtree"`` (dynamic, default for hand-built tables) or ``"packed"``
        (immutable flat-array index built on bulk load; the table demotes to a
        dynamic tree automatically when a row is inserted, updated or deleted).
    lazy_secondary_indexes:
        When ``True``, the node-id B+-trees and the label tries are not
        populated at load time; they are built from the row store on first
        use (node lookup, keyword search, or property access).  Mutations
        while an index is unbuilt are simply absorbed by the later
        build-from-store, so results are identical either way.
    cache_capacity:
        LRU bound (in rows) on each per-row cache; ``0`` means unbounded.
    """

    def __init__(
        self,
        layer: int,
        store: MemoryRowStore | FileRowStore | None = None,
        rtree_max_entries: int = 32,
        btree_order: int = 64,
        index_kind: str = "rtree",
        lazy_secondary_indexes: bool = False,
        cache_capacity: int = 0,
    ) -> None:
        if index_kind not in {"rtree", "packed"}:
            raise StorageError(f"unknown index kind {index_kind!r}")
        self.layer = layer
        self.store = store if store is not None else MemoryRowStore()
        self.rtree_max_entries = rtree_max_entries
        self.btree_order = btree_order
        self.index_kind = index_kind
        self.lazy_secondary_indexes = lazy_secondary_indexes
        self.cache_capacity = cache_capacity
        self.rtree: RTree | PackedRTree = RTree(max_entries=rtree_max_entries)
        # Secondary indexes: ``None`` means "not built yet" (lazy mode); the
        # public accessors below build them from the row store on first use.
        self._node1_index: BPlusTree | None = None
        self._node2_index: BPlusTree | None = None
        self._node_label_index: FullTextIndex | None = None
        self._edge_label_index: FullTextIndex | None = None
        # Persisted secondary-index pages (see storage.secondary_pages)
        # attached by the SQLite loader: consumed by the lazy build gates
        # below instead of a store scan, and dropped on the first mutation —
        # a page describes exactly the rows it was saved with.
        self._pending_node_page: bytes | None = None
        self._pending_label_page: bytes | None = None
        if not lazy_secondary_indexes:
            # Eager mode starts from empty indexes (the seed behaviour): rows
            # are indexed as they are inserted/bulk-loaded, never re-derived
            # from a pre-existing on-disk store at construction time.
            self._node1_index = BPlusTree(order=btree_order)
            self._node2_index = BPlusTree(order=btree_order)
            self._node_label_index = FullTextIndex()
            self._edge_label_index = FullTextIndex()
        self._next_row_id = 0
        # Per-row caches for the zero-copy query pipeline: decoded geometry
        # segments and flat endpoint coordinates (used by the exact window
        # filter) and JSON fragments (used by the payload builder).  All are
        # invalidated per row on mutation and LRU-bounded by cache_capacity.
        self._segment_cache: LRUCache = LRUCache(cache_capacity)
        self._coord_cache: LRUCache = LRUCache(cache_capacity)
        self.fragment_cache: LRUCache = LRUCache(cache_capacity)
        # Concurrency state for the serving subsystem.  Mutations and repacks
        # serialise on the write lock (reentrant: update_row = delete + insert);
        # the secondary lock makes the lazy build-from-store single-flight so
        # two concurrent readers never observe a half-assigned index pair.
        # Spatial reads are lock-free on the packed index (immutable, swapped
        # atomically) but take the write lock while the table runs the
        # demoted dynamic tree, whose node splits mutate in place — see
        # :meth:`_spatial_candidates`.
        self._write_lock = threading.RLock()
        self._secondary_lock = threading.Lock()
        # Bumped (under the write lock) on every cache invalidation.  Readers
        # capture it before fetching rows and their cache fills are dropped
        # if it moved — otherwise a fill computed from a pre-mutation row
        # object could land *after* the writer's invalidation and serve
        # stale geometry/JSON forever.  See :meth:`_cache_put`.
        self._cache_generation = 0
        # Edit tracking for background maintenance: how many mutations hit the
        # table since the packed index was last current, and when the last one
        # happened (monotonic clock), so a scheduler can detect quiescence.
        self.edits_since_repack = 0
        #: Monotonic mutation counter: never reset (repack clears
        #: ``edits_since_repack`` but not this), so remote caches can compare
        #: two snapshots and know whether *any* write happened in between.
        self.total_edits = 0
        self._last_edit_monotonic: float | None = None

    # ------------------------------------------------------- secondary indexes

    @property
    def node_indexes_built(self) -> bool:
        """``True`` when the node-id B+-trees are materialised."""
        return self._node1_index is not None

    @property
    def label_indexes_built(self) -> bool:
        """``True`` when the label tries are materialised."""
        return self._node_label_index is not None

    @property
    def node1_index(self) -> BPlusTree:
        """B+-tree on ``node1_id`` (built from the store on first access)."""
        self._ensure_node_indexes()
        return self._node1_index

    @property
    def node2_index(self) -> BPlusTree:
        """B+-tree on ``node2_id`` (built from the store on first access)."""
        self._ensure_node_indexes()
        return self._node2_index

    @property
    def node_label_index(self) -> FullTextIndex:
        """Trie over node labels (built from the store on first access)."""
        self._ensure_label_indexes()
        return self._node_label_index

    @property
    def edge_label_index(self) -> FullTextIndex:
        """Trie over edge labels (built from the store on first access)."""
        self._ensure_label_indexes()
        return self._edge_label_index

    @staticmethod
    def _index_row_secondary(
        row: EdgeRow,
        node1: BPlusTree | None,
        node2: BPlusTree | None,
        node_labels: FullTextIndex | None,
        edge_labels: FullTextIndex | None,
    ) -> None:
        """Add one row to whichever secondary indexes are given.

        The single source of truth for the row-to-secondary-index mapping:
        incremental maintenance and every lazy/eager build-from-store path go
        through here, so the indexing rules cannot drift apart.
        """
        if node1 is not None:
            node1.insert(row.node1_id, row.row_id)
            node2.insert(row.node2_id, row.row_id)
        if node_labels is not None:
            if row.node1_label:
                node_labels.add(("n1", row.row_id), row.node1_label)
            if row.node2_label and not row.is_node_row():
                node_labels.add(("n2", row.row_id), row.node2_label)
            if row.edge_label:
                edge_labels.add(row.row_id, row.edge_label)

    def _ensure_node_indexes(self) -> None:
        if self._node1_index is not None:
            return
        # Double-checked lock: without it, a reader arriving between the two
        # attribute assignments of a racing builder could see ``node1_index``
        # set but ``node2_index`` still ``None``.  The write lock is taken
        # first (always in that order) so the build's store scan cannot race
        # a concurrent mutation — and a writer checking ``_node1_index`` to
        # decide whether to maintain the index can never interleave with a
        # half-done build.
        with self._write_lock, self._secondary_lock:
            if self._node1_index is not None:
                return
            restored = self._restore_node_page()
            if restored is not None:
                node1, node2 = restored
            else:
                node1 = BPlusTree(order=self.btree_order)
                node2 = BPlusTree(order=self.btree_order)
                for row in self.store.scan():
                    self._index_row_secondary(row, node1, node2, None, None)
            self._node2_index = node2
            self._node1_index = node1

    def _ensure_label_indexes(self) -> None:
        if self._node_label_index is not None:
            return
        with self._write_lock, self._secondary_lock:
            if self._node_label_index is not None:
                return
            restored = self._restore_label_page()
            if restored is not None:
                node_labels, edge_labels = restored
            else:
                node_labels = FullTextIndex()
                edge_labels = FullTextIndex()
                for row in self.store.scan():
                    self._index_row_secondary(
                        row, None, None, node_labels, edge_labels
                    )
            self._edge_label_index = edge_labels
            self._node_label_index = node_labels

    # ------------------------------------------------- secondary index pages

    def attach_secondary_pages(
        self, node_page: bytes | None, label_page: bytes | None
    ) -> None:
        """Stage persisted secondary-index pages for the lazy build gates.

        Called by the SQLite loader after the rows are in place; the caller
        (``load_from_sqlite``) has already validated each page's fingerprint
        against the loaded row content.  Decoding is deferred to first use,
        so a window-only workload never pays for it — and a page that fails
        to decode falls back to the ordinary build-from-store scan.
        """
        with self._secondary_lock:
            if self._node1_index is None:
                self._pending_node_page = node_page
            if self._node_label_index is None:
                self._pending_label_page = label_page

    @property
    def has_pending_secondary_pages(self) -> bool:
        """``True`` while staged pages await their first-use restore."""
        return (
            self._pending_node_page is not None
            or self._pending_label_page is not None
        )

    def _restore_node_page(self):
        """Decode the staged node-btree page, or ``None`` (caller holds locks)."""
        page, self._pending_node_page = self._pending_node_page, None
        if page is None:
            return None
        from .secondary_pages import decode_node_btrees

        try:
            return decode_node_btrees(page, order=self.btree_order)
        except StorageError:
            return None  # undecodable page: the store scan below rebuilds

    def _restore_label_page(self):
        """Decode the staged label-trie page, or ``None`` (caller holds locks)."""
        page, self._pending_label_page = self._pending_label_page, None
        if page is None:
            return None
        from .secondary_pages import decode_label_tries

        try:
            return decode_label_tries(page)
        except StorageError:
            return None

    def _drop_pending_secondary_pages(self) -> None:
        # Mutations invalidate staged pages: they describe the rows the save
        # wrote, not the rows a later build-from-store would scan.  Callers
        # hold the write lock.
        self._pending_node_page = None
        self._pending_label_page = None

    def _reset_secondary_indexes(self) -> None:
        """Discard the secondary indexes; they rebuild from the store on use.

        In eager mode all four are rebuilt immediately in a single pass over
        the store (a ``FileRowStore`` scan decodes every row, so one pass
        matters on the cold-start path).
        """
        with self._secondary_lock:
            self._node1_index = None
            self._node2_index = None
            self._node_label_index = None
            self._edge_label_index = None
            if self.lazy_secondary_indexes:
                return
            node1 = BPlusTree(order=self.btree_order)
            node2 = BPlusTree(order=self.btree_order)
            node_labels = FullTextIndex()
            edge_labels = FullTextIndex()
            for row in self.store.scan():
                self._index_row_secondary(row, node1, node2, node_labels, edge_labels)
            # The guard attributes (node1 / node_labels) are assigned last so a
            # lock-free reader that sees the guard set also sees its partner.
            self._node2_index = node2
            self._edge_label_index = edge_labels
            self._node1_index = node1
            self._node_label_index = node_labels

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        return len(self.store)

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return len(self.store)

    def resident_bytes(self, sample_size: int = 256) -> int:
        """Estimated resident size of this table: rows plus spatial-index bytes.

        Row cost is extrapolated from a sample (geometry blob + label text +
        a fixed per-object overhead for the dataclass, ids and store slot), so
        the estimate stays O(sample) however large the table is.  The spatial
        index reports its own bytes when packed; the dynamic tree is estimated
        from its node count.  Used by the dataset pool's memory budget —
        proportionality matters, exactness does not.
        """
        count = self.num_rows
        if count == 0:
            return 0
        sampled = 0
        sample_bytes = 0
        for row in self.store.scan():
            sample_bytes += (
                len(row.edge_geometry)
                + len(row.node1_label) + len(row.node2_label) + len(row.edge_label)
                + 160  # dataclass + 2 ids + row_id + store-slot overhead
            )
            sampled += 1
            if sampled >= sample_size:
                break
        row_bytes = (sample_bytes * count) // sampled
        rtree = self.rtree
        if hasattr(rtree, "nbytes"):
            index_bytes = rtree.nbytes
        else:  # dynamic tree: nodes hold boxed rects + child/entry lists
            index_bytes = rtree.stats().num_nodes * 64 * 8
        return row_bytes + index_bytes

    # ----------------------------------------------------------------- loading

    def insert(self, row: EdgeRow) -> None:
        """Insert one row and update every index."""
        with self._write_lock:
            # Demote a packed index *before* the row enters the store: the
            # rebuild scans the store, so demoting afterwards would index the
            # row twice.
            self.ensure_dynamic_index()
            self.store.put(row)
            self._next_row_id = max(self._next_row_id, row.row_id + 1)
            self._invalidate_row_caches(row.row_id)
            self._index_row(row)
            self._record_edit()

    def bulk_load(self, rows: Iterable[EdgeRow], bulk_rtree: bool = True) -> int:
        """Load many rows; optionally bulk-load the spatial index.  Returns the count."""
        rows = list(rows)
        if not bulk_rtree:
            # Rows will be inserted into the spatial index one by one, which a
            # packed index cannot do: demote first (before the store changes).
            self.ensure_dynamic_index()
        for row in rows:
            self.store.put(row)
            self._next_row_id = max(self._next_row_id, row.row_id + 1)
            if not bulk_rtree:
                # The bulk_rtree branch below clears the caches wholesale.
                self._invalidate_row_caches(row.row_id)
            self._index_row(row, skip_rtree=bulk_rtree)
        if bulk_rtree:
            # Rebuild the spatial index over the full table so repeated bulk
            # loads stay consistent with the row store.  ``packed`` builds the
            # flat Hilbert-packed index; ``rtree`` keeps the dynamic STR tree.
            entries = [(row.bounding_rect(), row.row_id) for row in self.store.scan()]
            if self.index_kind == "packed":
                self.rtree = PackedRTree.bulk_load(
                    entries, max_entries=self.rtree_max_entries
                )
            else:
                self.rtree = RTree.bulk_load(
                    entries, max_entries=self.rtree_max_entries
                )
            with self._write_lock:
                self._cache_generation += 1
                self._segment_cache.clear()
                self._coord_cache.clear()
                self.fragment_cache.clear()
            self.edits_since_repack = 0
        return len(rows)

    def ensure_dynamic_index(self) -> None:
        """Demote a packed index to a dynamic R-tree so updates can proceed.

        Called automatically before any mutation; a no-op when the active index
        already supports updates.  The dynamic tree is rebuilt with STR bulk
        loading over the current rows, so query results are unchanged.
        """
        if self.rtree.supports_updates:
            return
        self.rtree = RTree.bulk_load(
            [(row.bounding_rect(), row.row_id) for row in self.store.scan()],
            max_entries=self.rtree_max_entries,
        )

    def attach_packed_index(
        self, tree: PackedRTree, rows: Iterable[EdgeRow] | None = None
    ) -> None:
        """Install a deserialised packed index without re-indexing any row.

        This is the zero-rebuild cold-start path: ``rows`` (when given) are
        placed into the row store with no per-row index maintenance, ``tree``
        becomes the active spatial index, and the secondary indexes are left
        to the lazy build-from-store gate (or rebuilt immediately in eager
        mode).  The caller is responsible for ``tree`` having been built over
        exactly these rows — the SQLite backend enforces that with a
        content fingerprint; as a last line of defence the entry count is
        checked here.
        """
        # Validate the count BEFORE mutating anything, so a mismatched tree
        # leaves the table exactly as it was (no rows without index entries).
        if rows is not None:
            rows = list(rows)
            new_ids = {row.row_id for row in rows}
            contains = self.store.contains
            projected = len(self.store) + sum(
                1 for row_id in new_ids if not contains(row_id)
            )
        else:
            projected = len(self.store)
        if len(tree) != projected:
            raise StorageError(
                f"packed index covers {len(tree)} rows but the store would hold "
                f"{projected}"
            )
        if rows is not None:
            put = self.store.put
            next_id = self._next_row_id
            for row in rows:
                put(row)
                if row.row_id >= next_id:
                    next_id = row.row_id + 1
            self._next_row_id = next_id
        self.rtree = tree
        self.index_kind = "packed"
        self.edits_since_repack = 0
        with self._write_lock:
            self._cache_generation += 1
            self._segment_cache.clear()
            self._coord_cache.clear()
            self.fragment_cache.clear()
        self._reset_secondary_indexes()

    def repack(self) -> bool:
        """Rebuild the packed spatial index from the current rows.

        After Edit-panel mutations demote the table to the dynamic R-tree,
        calling this (e.g. from :meth:`repro.core.editing.GraphEditor.repack`
        once writes quiesce) re-packs the rows into the immutable flat index
        and re-enables the zero-copy query pipeline.  Row-level caches are
        kept: they are keyed by row id and invalidated per mutation, so they
        are still exact.  Returns ``True`` when the active index changed.

        Already-packed tables return ``False`` without rebuilding: mutations
        always demote to the dynamic tree first, so a packed index is
        necessarily current and a quiesce timer can call this unconditionally.

        Safe to call from a background maintenance thread: the rebuild runs
        under the table's write lock, so no mutation can slip between the row
        scan and the index swap, and concurrent readers see either the old
        dynamic tree or the new packed tree (both cover the same rows).
        """
        with self._write_lock:
            if not self.rtree.supports_updates:
                return False
            self.rtree = PackedRTree.bulk_load(
                ((row.bounding_rect(), row.row_id) for row in self.store.scan()),
                max_entries=self.rtree_max_entries,
            )
            self.index_kind = "packed"
            self.edits_since_repack = 0
            return True

    @property
    def write_lock(self) -> threading.RLock:
        """The table's reentrant write lock.

        Held by mutations, repack and index builds; external callers that
        need a multi-step consistent view of the rows (e.g. the SQLite save
        path hashing and then streaming them) hold it across their scans.
        """
        return self._write_lock

    # ------------------------------------------------------------ edit tracking

    def _record_edit(self) -> None:
        """Note one mutation for the background-maintenance heuristics."""
        self.edits_since_repack += 1
        self.total_edits += 1
        self._last_edit_monotonic = time.monotonic()
        self._drop_pending_secondary_pages()

    @property
    def last_edit_age_seconds(self) -> float | None:
        """Seconds since the last mutation, or ``None`` if never mutated."""
        if self._last_edit_monotonic is None:
            return None
        return time.monotonic() - self._last_edit_monotonic

    def write_quiesced(self, for_seconds: float) -> bool:
        """Return ``True`` when no mutation happened in the last ``for_seconds``.

        This is the quiescence hook the maintenance scheduler polls before
        triggering a background :meth:`repack`; a never-edited table counts as
        quiesced.
        """
        age = self.last_edit_age_seconds
        return age is None or age >= for_seconds

    def _invalidate_row_caches(self, row_id: int) -> None:
        # Callers hold the write lock; the bump and the pops are therefore
        # atomic with respect to guarded cache fills.
        self._cache_generation += 1
        self._segment_cache.pop(row_id, None)
        self._coord_cache.pop(row_id, None)
        self.fragment_cache.pop(row_id, None)

    def _cache_put(self, generation: int, cache: LRUCache, key, value) -> None:
        """Install a cache fill unless an invalidation landed since ``generation``.

        ``generation`` must have been read from ``_cache_generation`` before
        the row the value was computed from was fetched; the check-and-set
        runs under the write lock, so a racing writer either invalidates
        after this fill (removing it) or bumps the generation first (and the
        fill is dropped).  Only cache *misses* pay the lock.
        """
        with self._write_lock:
            if self._cache_generation == generation:
                cache[key] = value

    def fragment_fill_guard(self) -> "CacheFillGuard":
        """A view of the fragment cache whose writes are generation-guarded.

        Capture it *before* fetching the rows whose fragments will be built;
        pass it to :func:`repro.core.json_builder.build_payload` in place of
        the raw ``fragment_cache``.  Reads hit the real cache directly;
        writes go through :meth:`_cache_put`.
        """
        return CacheFillGuard(self, self.fragment_cache)

    def _index_row(self, row: EdgeRow, skip_rtree: bool = False) -> None:
        # Unbuilt (lazy) secondary indexes are passed as None and skipped: the
        # row is already in the store, so the eventual build-from-store picks
        # it up.
        if not skip_rtree:
            self.rtree.insert(row.bounding_rect(), row.row_id)
        self._index_row_secondary(
            row,
            self._node1_index,
            self._node2_index,
            self._node_label_index,
            self._edge_label_index,
        )

    def next_row_id(self) -> int:
        """Return the next unused surrogate row id."""
        return self._next_row_id

    # ---------------------------------------------------------------- mutation

    def delete_row(self, row_id: int) -> None:
        """Delete a row and remove it from every index."""
        with self._write_lock:
            row = self.store.get(row_id)
            # Demote a packed index while the row is still in the store, so the
            # rebuilt dynamic tree contains it and the delete below finds it.
            self.ensure_dynamic_index()
            self.store.delete(row_id)
            self._invalidate_row_caches(row_id)
            self.rtree.delete(row.bounding_rect(), row_id)
            # Unbuilt (lazy) secondary indexes need no removal: the row is
            # already gone from the store the eventual build scans.
            if self._node1_index is not None:
                self._node1_index.remove(row.node1_id, row_id)
                self._node2_index.remove(row.node2_id, row_id)
            if self._node_label_index is not None:
                self._node_label_index.remove(("n1", row_id))
                self._node_label_index.remove(("n2", row_id))
                self._edge_label_index.remove(row_id)
            self._record_edit()

    def update_row(self, row: EdgeRow) -> None:
        """Replace an existing row (same ``row_id``) and refresh the indexes."""
        with self._write_lock:
            self.delete_row(row.row_id)
            self.insert(row)

    # ----------------------------------------------------------------- queries

    def get(self, row_id: int) -> EdgeRow:
        """Fetch a row by id."""
        return self.store.get(row_id)

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every row."""
        return self.store.scan()

    def segment_of(self, row: EdgeRow) -> LineSegment:
        """Return the row's decoded geometry, memoised per ``row_id``.

        Decoding the binary blob dominates the exact window filter on hot
        paths; rows are immutable, so the decoded segment can be reused until
        the row is updated or deleted.  The memoisation is generation-guarded
        against concurrent mutation of the row (callers that held ``row``
        across a mutation still get the correct segment back — it is derived
        from ``row`` itself — it just is not cached).
        """
        segment = self._segment_cache.get(row.row_id)
        if segment is None:
            generation = self._cache_generation
            segment = row.segment()
            self._cache_put(generation, self._segment_cache, row.row_id, segment)
        return segment

    def _spatial_candidates(self, query):
        """Run one spatial-index read with the demotion-aware locking rule.

        The packed index is immutable and installed with a single attribute
        swap, so reads against it are lock-free — the common serving case.
        The dynamic tree a table demotes to after edits splits nodes *in
        place*, so while it is active, reads serialise with writers on the
        (reentrant) write lock; background repack restores the lock-free
        path shortly after writes quiesce.
        """
        tree = self.rtree
        if not tree.supports_updates:
            return query(tree)
        with self._write_lock:
            # Re-read under the lock: the captured tree may have been swapped
            # (repacked or re-demoted) while we waited for a writer.
            return query(self.rtree)

    def window_query(self, window: Rect) -> list[EdgeRow]:
        """Return rows whose edge geometry intersects ``window``.

        The spatial index prunes by bounding rectangle; an exact
        segment/rectangle test then removes false positives (a diagonal edge
        whose bounding box overlaps the window but whose segment does not).
        """
        candidates = self._spatial_candidates(lambda tree: tree.window_query(window))
        return self._exact_rows(candidates, window)

    def window_query_batch(self, windows: list[Rect]) -> list[list[EdgeRow]]:
        """Evaluate many windows in one call; per-window results are identical
        to :meth:`window_query`."""
        candidate_lists = self._spatial_candidates(
            lambda tree: tree.window_query_batch(windows)
        )
        return [
            self._exact_rows(candidates, window)
            for candidates, window in zip(candidate_lists, windows)
        ]

    def nearest(self, point: Point, k: int = 1) -> list[EdgeRow]:
        """Return the rows of the ``k`` spatially nearest index entries.

        The demotion-aware read path for kNN: lock-free on the packed index,
        serialised with writers while the table runs the dynamic tree, and
        tolerant of rows deleted behind the index snapshot.
        """
        return self.live_rows(
            self._spatial_candidates(lambda tree: tree.nearest(point, k=k))
        )

    def count_window_index(self, window: Rect) -> int:
        """Bounding-box hit count straight off the spatial index (no row I/O).

        Used by layer recommendation; unlike :meth:`count_window` this does
        not apply the exact segment test, matching ``rtree.count_window``.
        """
        return self._spatial_candidates(lambda tree: tree.count_window(window))

    def _exact_rows(self, candidates: list[object], window: Rect) -> list[EdgeRow]:
        """Fetch candidate rows and apply the exact segment/window test.

        Candidate ids are sorted up front (a C-level integer sort), so the
        result list is in row-id order by construction.  The test is fully
        inlined over the flat coordinate cache: an endpoint inside the window
        decides the common case, and because the index already guaranteed the
        segment's bounding box overlaps the window, the both-endpoints-outside
        case reduces to the corner-straddle test on the supporting line (the
        same predicate as :meth:`LineSegment.intersects_rect`, minus the
        redundant bounding-box work).
        """
        get = self.store.get
        contains = self.store.contains
        segment_of = self.segment_of
        coords = self._coord_cache
        coords_get = coords.get
        # Fills computed from rows fetched after this point are dropped if a
        # mutation invalidates concurrently (see _cache_put).
        generation = self._cache_generation
        wx0, wy0, wx1, wy1 = window.min_x, window.min_y, window.max_x, window.max_y
        results: list[EdgeRow] = []
        append = results.append
        for row_id in sorted(candidates):  # type: ignore[type-var]
            try:
                row = get(row_id)  # type: ignore[arg-type]
            except StorageError:
                # Lock-free readers may hold a spatial-index snapshot from
                # just before a concurrent delete_row removed the row; skip
                # it — equivalent to the delete having happened first.
                if contains(row_id):  # type: ignore[arg-type]
                    raise  # a different storage failure: do not mask it
                continue
            flat = coords_get(row_id)
            if flat is None:
                # Derive the flat coordinates from the (possibly cached)
                # segment rather than reading the coord cache back: the two
                # LRU caches evict independently, so a segment hit does not
                # imply a coord entry.
                segment = segment_of(row)
                flat = (segment.start.x, segment.start.y, segment.end.x, segment.end.y)
                self._cache_put(generation, coords, row_id, flat)
            x1, y1, x2, y2 = flat
            if (wx0 <= x1 <= wx1 and wy0 <= y1 <= wy1) or (
                wx0 <= x2 <= wx1 and wy0 <= y2 <= wy1
            ):
                append(row)
                continue
            dx = x2 - x1
            dy = y2 - y1
            s1 = dx * (wy0 - y1) - dy * (wx0 - x1)
            s2 = dx * (wy0 - y1) - dy * (wx1 - x1)
            s3 = dx * (wy1 - y1) - dy * (wx0 - x1)
            s4 = dx * (wy1 - y1) - dy * (wx1 - x1)
            if (s1 > 0 or s2 > 0 or s3 > 0 or s4 > 0) and (
                s1 < 0 or s2 < 0 or s3 < 0 or s4 < 0
            ):
                append(row)
            elif s1 == 0 or s2 == 0 or s3 == 0 or s4 == 0:
                append(row)
        return results

    def count_window(self, window: Rect) -> int:
        """Return the number of rows intersecting ``window`` (exact)."""
        return len(self.window_query(window))

    def live_rows(self, row_ids: Iterable[int]) -> list[EdgeRow]:
        """Fetch rows by id, skipping ids a concurrent delete already removed.

        The tolerant fetch behind every index-then-load read path (window
        queries inline the same pattern): index snapshots are read without a
        lock, so an id may refer to a row a concurrent writer deleted after
        the snapshot was taken.
        """
        get = self.store.get
        contains = self.store.contains
        rows: list[EdgeRow] = []
        for row_id in row_ids:
            try:
                rows.append(get(row_id))
            except StorageError:
                if contains(row_id):
                    raise
        return rows

    def rows_for_node(self, node_id: int) -> list[EdgeRow]:
        """Return every row in which ``node_id`` appears as node1 or node2."""
        # Built B+-trees are mutated in place by writers (under the write
        # lock), so traversals serialise with them the same way demoted-tree
        # spatial reads do; the row fetch runs outside the lock.
        with self._write_lock:
            row_ids = set(self.node1_index.search(node_id)) | set(
                self.node2_index.search(node_id)
            )
        return self.live_rows(sorted(row_ids))  # type: ignore[arg-type]

    def node_position(self, node_id: int) -> Point | None:
        """Return the plane coordinates of ``node_id`` (from any incident row)."""
        for row in self.rows_for_node(node_id):
            start, end = row.endpoints()
            if row.node1_id == node_id:
                return start
            if row.node2_id == node_id:
                return end
        return None

    def keyword_search(self, keyword: str, mode: str = "contains") -> list[tuple[int, str]]:
        """Search node labels; return ``(node_id, label)`` pairs sorted by label.

        This implements the paper's keyword query: "evaluated on the whole set of
        node labels which are indexed with tries. The result ... is a list of
        nodes whose labels contain the given keyword."
        """
        # Trie traversal serialises with in-place writer mutations; see
        # :meth:`rows_for_node`.
        with self._write_lock:
            matches = self.node_label_index.search(keyword, mode=mode)
        results: dict[int, str] = {}
        contains = self.store.contains
        for slot, row_id in matches:  # type: ignore[misc]
            try:
                row = self.store.get(row_id)
            except StorageError:
                if contains(row_id):
                    raise
                continue  # deleted by a concurrent writer mid-search
            if slot == "n1":
                results.setdefault(row.node1_id, row.node1_label)
            else:
                results.setdefault(row.node2_id, row.node2_label)
        return sorted(results.items(), key=lambda item: (item[1], item[0]))

    def edge_keyword_search(self, keyword: str, mode: str = "contains") -> list[EdgeRow]:
        """Search edge labels; return matching rows."""
        with self._write_lock:
            row_ids = self.edge_label_index.search(keyword, mode=mode)
        return self.live_rows(sorted(row_ids, key=lambda r: int(r)))  # type: ignore[arg-type]

    def bounds(self) -> Rect | None:
        """Return the bounding rectangle of the layer's drawing."""
        return self.rtree.bounds

    def distinct_node_ids(self) -> set[int]:
        """Return every node id appearing in the table."""
        with self._write_lock:
            return set(self.node1_index.keys()) | set(self.node2_index.keys())

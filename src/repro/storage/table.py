"""Layer tables: one indexed table per abstraction layer.

A :class:`LayerTable` stores the rows of one layer together with the indexes the
paper builds on them (Fig. 2):

* B+-trees on ``node1_id`` and ``node2_id``;
* full-text (trie) indexes on ``node1_label``, ``edge_label`` and ``node2_label``;
* an R-tree on the edge geometries.

Two row stores are available: :class:`MemoryRowStore` (default) and
:class:`FileRowStore`, which persists rows in the binary record format and keeps
only the indexes in memory — the configuration the paper's "extremely low ...
memory requirements" claim corresponds to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from ..errors import StorageError
from ..spatial.btree import BPlusTree
from ..spatial.geometry import Point, Rect
from ..spatial.rtree import RTree
from ..spatial.trie import FullTextIndex
from .schema import EdgeRow
from .serialization import read_rows, write_rows

__all__ = ["MemoryRowStore", "FileRowStore", "LayerTable"]


class MemoryRowStore:
    """Row store keeping every row in a Python dict (fastest, most memory)."""

    def __init__(self) -> None:
        self._rows: dict[int, EdgeRow] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def put(self, row: EdgeRow) -> None:
        """Insert or replace a row."""
        self._rows[row.row_id] = row

    def get(self, row_id: int) -> EdgeRow:
        """Fetch a row by id."""
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(f"row {row_id} does not exist") from None

    def delete(self, row_id: int) -> None:
        """Delete a row by id."""
        if row_id not in self._rows:
            raise StorageError(f"row {row_id} does not exist")
        del self._rows[row_id]

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every row (ascending row id)."""
        for row_id in sorted(self._rows):
            yield self._rows[row_id]


class FileRowStore:
    """Row store persisting rows to a binary file, with an in-memory offset map.

    Rows are append-only on disk; deletions and overwrites are recorded in the
    offset map and compacted when :meth:`compact` is called.  This mimics the
    disk-resident behaviour of the original MySQL-backed system: the working set
    in memory is the indexes, not the data.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._offsets: dict[int, int] = {}
        if self.path.exists():
            self._rebuild_offsets()
        else:
            self.path.touch()

    def _rebuild_offsets(self) -> None:
        self._offsets.clear()
        with open(self.path, "rb") as handle:
            while True:
                offset = handle.tell()
                prefix = handle.read(4)
                if not prefix or len(prefix) < 4:
                    break
                length = int.from_bytes(prefix, "little")
                record = handle.read(length)
                if len(record) != length:
                    raise StorageError(f"corrupt row file {self.path}")
                from .serialization import decode_row

                row = decode_row(record)
                self._offsets[row.row_id] = offset

    def __len__(self) -> int:
        return len(self._offsets)

    def put(self, row: EdgeRow) -> None:
        """Append a row and register its offset."""
        with open(self.path, "ab") as handle:
            offset = handle.tell()
            write_rows([row], handle)
        self._offsets[row.row_id] = offset

    def get(self, row_id: int) -> EdgeRow:
        """Read one row from disk."""
        offset = self._offsets.get(row_id)
        if offset is None:
            raise StorageError(f"row {row_id} does not exist")
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            length = int.from_bytes(handle.read(4), "little")
            record = handle.read(length)
        from .serialization import decode_row

        return decode_row(record)

    def delete(self, row_id: int) -> None:
        """Drop the row from the offset map (space reclaimed on compaction)."""
        if row_id not in self._offsets:
            raise StorageError(f"row {row_id} does not exist")
        del self._offsets[row_id]

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every live row (ascending row id); random access per row."""
        for row_id in sorted(self._offsets):
            yield self.get(row_id)

    def compact(self) -> None:
        """Rewrite the file keeping only live rows."""
        live = list(self.scan())
        temp_path = self.path.with_suffix(".compact")
        with open(temp_path, "wb") as handle:
            write_rows(live, handle)
        temp_path.replace(self.path)
        self._rebuild_offsets()

    def load_all(self) -> list[EdgeRow]:
        """Read the whole file sequentially (used when rebuilding indexes)."""
        with open(self.path, "rb") as handle:
            return [row for row in read_rows(handle) if row.row_id in self._offsets]


class LayerTable:
    """One abstraction layer's table plus its indexes.

    Parameters
    ----------
    layer:
        Abstraction level this table stores (0 = input graph).
    store:
        Row store; defaults to :class:`MemoryRowStore`.
    rtree_max_entries / btree_order:
        Index tuning knobs (see :class:`repro.config.StorageConfig`).
    """

    def __init__(
        self,
        layer: int,
        store: MemoryRowStore | FileRowStore | None = None,
        rtree_max_entries: int = 32,
        btree_order: int = 64,
    ) -> None:
        self.layer = layer
        self.store = store if store is not None else MemoryRowStore()
        self.rtree_max_entries = rtree_max_entries
        self.btree_order = btree_order
        self.rtree = RTree(max_entries=rtree_max_entries)
        self.node1_index = BPlusTree(order=btree_order)
        self.node2_index = BPlusTree(order=btree_order)
        self.node_label_index = FullTextIndex()
        self.edge_label_index = FullTextIndex()
        self._next_row_id = 0

    # ------------------------------------------------------------------ sizing

    def __len__(self) -> int:
        return len(self.store)

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return len(self.store)

    # ----------------------------------------------------------------- loading

    def insert(self, row: EdgeRow) -> None:
        """Insert one row and update every index."""
        self.store.put(row)
        self._next_row_id = max(self._next_row_id, row.row_id + 1)
        self._index_row(row)

    def bulk_load(self, rows: Iterable[EdgeRow], bulk_rtree: bool = True) -> int:
        """Load many rows; optionally STR-bulk-load the R-tree.  Returns the count."""
        rows = list(rows)
        for row in rows:
            self.store.put(row)
            self._next_row_id = max(self._next_row_id, row.row_id + 1)
            self._index_row(row, skip_rtree=bulk_rtree)
        if bulk_rtree:
            # Rebuild the R-tree over the full table so repeated bulk loads stay
            # consistent with the row store.
            self.rtree = RTree.bulk_load(
                [(row.bounding_rect(), row.row_id) for row in self.store.scan()],
                max_entries=self.rtree_max_entries,
            )
        return len(rows)

    def _index_row(self, row: EdgeRow, skip_rtree: bool = False) -> None:
        if not skip_rtree:
            self.rtree.insert(row.bounding_rect(), row.row_id)
        self.node1_index.insert(row.node1_id, row.row_id)
        self.node2_index.insert(row.node2_id, row.row_id)
        if row.node1_label:
            self.node_label_index.add(("n1", row.row_id), row.node1_label)
        if row.node2_label and not row.is_node_row():
            self.node_label_index.add(("n2", row.row_id), row.node2_label)
        if row.edge_label:
            self.edge_label_index.add(row.row_id, row.edge_label)

    def next_row_id(self) -> int:
        """Return the next unused surrogate row id."""
        return self._next_row_id

    # ---------------------------------------------------------------- mutation

    def delete_row(self, row_id: int) -> None:
        """Delete a row and remove it from every index."""
        row = self.store.get(row_id)
        self.store.delete(row_id)
        self.rtree.delete(row.bounding_rect(), row_id)
        self.node1_index.remove(row.node1_id, row_id)
        self.node2_index.remove(row.node2_id, row_id)
        self.node_label_index.remove(("n1", row_id))
        self.node_label_index.remove(("n2", row_id))
        self.edge_label_index.remove(row_id)

    def update_row(self, row: EdgeRow) -> None:
        """Replace an existing row (same ``row_id``) and refresh the indexes."""
        self.delete_row(row.row_id)
        self.insert(row)

    # ----------------------------------------------------------------- queries

    def get(self, row_id: int) -> EdgeRow:
        """Fetch a row by id."""
        return self.store.get(row_id)

    def scan(self) -> Iterator[EdgeRow]:
        """Yield every row."""
        return self.store.scan()

    def window_query(self, window: Rect) -> list[EdgeRow]:
        """Return rows whose edge geometry intersects ``window``.

        The R-tree prunes by bounding rectangle; an exact segment/rectangle test
        then removes false positives (a diagonal edge whose bounding box overlaps
        the window but whose segment does not).
        """
        candidates = self.rtree.window_query(window)
        results: list[EdgeRow] = []
        for row_id in candidates:
            row = self.store.get(row_id)  # type: ignore[arg-type]
            if row.segment().intersects_rect(window):
                results.append(row)
        results.sort(key=lambda row: row.row_id)
        return results

    def count_window(self, window: Rect) -> int:
        """Return the number of rows intersecting ``window`` (exact)."""
        return len(self.window_query(window))

    def rows_for_node(self, node_id: int) -> list[EdgeRow]:
        """Return every row in which ``node_id`` appears as node1 or node2."""
        row_ids = set(self.node1_index.search(node_id)) | set(self.node2_index.search(node_id))
        return [self.store.get(row_id) for row_id in sorted(row_ids)]  # type: ignore[arg-type]

    def node_position(self, node_id: int) -> Point | None:
        """Return the plane coordinates of ``node_id`` (from any incident row)."""
        for row in self.rows_for_node(node_id):
            start, end = row.endpoints()
            if row.node1_id == node_id:
                return start
            if row.node2_id == node_id:
                return end
        return None

    def keyword_search(self, keyword: str, mode: str = "contains") -> list[tuple[int, str]]:
        """Search node labels; return ``(node_id, label)`` pairs sorted by label.

        This implements the paper's keyword query: "evaluated on the whole set of
        node labels which are indexed with tries. The result ... is a list of
        nodes whose labels contain the given keyword."
        """
        matches = self.node_label_index.search(keyword, mode=mode)
        results: dict[int, str] = {}
        for slot, row_id in matches:  # type: ignore[misc]
            row = self.store.get(row_id)
            if slot == "n1":
                results.setdefault(row.node1_id, row.node1_label)
            else:
                results.setdefault(row.node2_id, row.node2_label)
        return sorted(results.items(), key=lambda item: (item[1], item[0]))

    def edge_keyword_search(self, keyword: str, mode: str = "contains") -> list[EdgeRow]:
        """Search edge labels; return matching rows."""
        row_ids = self.edge_label_index.search(keyword, mode=mode)
        return [self.store.get(row_id) for row_id in sorted(row_ids, key=lambda r: int(r))]  # type: ignore[arg-type]

    def bounds(self) -> Rect | None:
        """Return the bounding rectangle of the layer's drawing."""
        return self.rtree.bounds

    def distinct_node_ids(self) -> set[int]:
        """Return every node id appearing in the table."""
        return set(self.node1_index.keys()) | set(self.node2_index.keys())

"""The graphVizdb database: one indexed layer table per abstraction layer.

Preprocessing Step 5 stores "the input graph along with the abstract graphs" in
the database — one table per layer, all with the schema of
:mod:`repro.storage.schema` — and builds the indexes of Fig. 2.  The online
query manager (:mod:`repro.core.query_manager`) only ever talks to this class.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..abstraction.hierarchy import LayerHierarchy
from ..config import StorageConfig
from ..errors import LayerNotFoundError, StorageError
from ..spatial.geometry import Rect
from .schema import EdgeRow, rows_from_graph
from .table import FileRowStore, LayerTable, MemoryRowStore

__all__ = ["GraphVizDatabase"]


class GraphVizDatabase:
    """Container of layer tables plus dataset-level metadata.

    Parameters
    ----------
    name:
        Dataset name (e.g. ``"wikidata-like"``).
    config:
        Storage configuration selecting the row-store backend and index tuning.
    """

    def __init__(self, name: str = "", config: StorageConfig | None = None) -> None:
        self.name = name
        self.config = config or StorageConfig()
        self._tables: dict[int, LayerTable] = {}
        self.metadata: dict[str, object] = {}

    # ------------------------------------------------------------------ layers

    @property
    def num_layers(self) -> int:
        """Number of stored layers."""
        return len(self._tables)

    def layers(self) -> list[int]:
        """Return the stored layer indexes in ascending order."""
        return sorted(self._tables)

    def has_layer(self, layer: int) -> bool:
        """Return ``True`` if the layer exists."""
        return layer in self._tables

    def table(self, layer: int) -> LayerTable:
        """Return the table of ``layer``; raises :class:`LayerNotFoundError`."""
        try:
            return self._tables[layer]
        except KeyError:
            raise LayerNotFoundError(layer) from None

    def create_layer(self, layer: int) -> LayerTable:
        """Create an empty table for ``layer`` (idempotent)."""
        if layer in self._tables:
            return self._tables[layer]
        store: MemoryRowStore | FileRowStore
        if self.config.backend == "file":
            base = Path(self.config.path or ".graphvizdb")
            store = FileRowStore(base / f"{self.name or 'graph'}-layer{layer}.rows")
        else:
            store = MemoryRowStore()
        table = LayerTable(
            layer=layer,
            store=store,
            rtree_max_entries=self.config.rtree_max_entries,
            btree_order=self.config.btree_order,
            index_kind=self.config.index_kind,
            lazy_secondary_indexes=self.config.lazy_secondary_indexes,
            cache_capacity=self.config.cache_capacity,
        )
        self._tables[layer] = table
        return table

    # ----------------------------------------------------------------- loading

    def load_layer(self, layer: int, rows: Iterable[EdgeRow]) -> int:
        """Create (if needed) and bulk-load one layer table; return the row count."""
        table = self.create_layer(layer)
        return table.bulk_load(rows, bulk_rtree=self.config.rtree_bulk_load)

    def load_hierarchy(self, hierarchy: LayerHierarchy) -> dict[int, int]:
        """Load every layer of a hierarchy; return ``layer -> row count``.

        This is the non-instrumented path; the preprocessing pipeline calls
        :func:`repro.storage.schema.rows_from_graph` itself so it can time each
        layer's indexing separately (the parallel-indexing claim of §III).
        """
        counts: dict[int, int] = {}
        for abstraction_layer in hierarchy:
            rows = rows_from_graph(abstraction_layer.graph, abstraction_layer.layout)
            counts[abstraction_layer.level] = self.load_layer(abstraction_layer.level, rows)
        return counts

    # ----------------------------------------------------------------- queries

    def window_query(self, layer: int, window: Rect) -> list[EdgeRow]:
        """Window query on one layer (delegates to the layer's spatial index)."""
        return self.table(layer).window_query(window)

    def window_query_batch(self, layer: int, windows: list[Rect]) -> list[list[EdgeRow]]:
        """Evaluate many windows on one layer in one call."""
        return self.table(layer).window_query_batch(windows)

    def keyword_search(
        self, layer: int, keyword: str, mode: str = "contains"
    ) -> list[tuple[int, str]]:
        """Keyword search over node labels of one layer."""
        return self.table(layer).keyword_search(keyword, mode=mode)

    def rows_for_node(self, layer: int, node_id: int) -> list[EdgeRow]:
        """Every row mentioning ``node_id`` in one layer."""
        return self.table(layer).rows_for_node(node_id)

    def bounds(self, layer: int) -> Rect | None:
        """Bounding rectangle of one layer's drawing."""
        return self.table(layer).bounds()

    # ------------------------------------------------------------- maintenance

    def edit_summary(self) -> dict[int, dict[str, object]]:
        """Per-layer edit counters for the maintenance scheduler.

        Returns ``layer -> {"edits_since_repack", "last_edit_age_seconds",
        "packed"}``; a layer with a non-zero edit count and ``packed=False``
        is a candidate for background :meth:`repack_layer` once its writes
        quiesce.
        """
        summary: dict[int, dict[str, object]] = {}
        for layer in self.layers():
            table = self._tables[layer]
            summary[layer] = {
                "edits_since_repack": table.edits_since_repack,
                "last_edit_age_seconds": table.last_edit_age_seconds,
                "packed": not table.rtree.supports_updates,
            }
        return summary

    def layers_due_for_repack(
        self, edit_threshold: int = 1, quiescence_seconds: float = 0.0
    ) -> list[int]:
        """Layers whose demoted index should be re-packed in the background.

        A layer is due when it currently runs the dynamic (demoted) index,
        has accumulated at least ``edit_threshold`` edits, and has seen no
        write for ``quiescence_seconds``.
        """
        due: list[int] = []
        for layer in self.layers():
            table = self._tables[layer]
            if table.rtree.supports_updates and (
                table.edits_since_repack >= edit_threshold
                and table.write_quiesced(quiescence_seconds)
            ):
                due.append(layer)
        return due

    def repack_layer(self, layer: int) -> bool:
        """Re-pack one layer's spatial index (see :meth:`LayerTable.repack`)."""
        return self.table(layer).repack()

    def edit_counter(self) -> int:
        """Monotonic dataset-wide mutation counter (sum over layer tables).

        Unlike ``edits_since_repack`` this never resets, so two snapshots
        compare equal *iff* no write happened in between — the invalidation
        signal the cluster router's window-result cache keys on (surfaced by
        the worker ``/health`` endpoint).
        """
        return sum(table.total_edits for table in self._tables.values())

    def resident_bytes(self) -> int:
        """Estimated resident size of the whole dataset (rows + index pages).

        Drives the dataset pool's ``max_resident_bytes`` eviction budget; see
        :meth:`LayerTable.resident_bytes` for the estimation contract.
        """
        return sum(table.resident_bytes() for table in self._tables.values())

    # ------------------------------------------------------------------- stats

    def storage_summary(self) -> dict[str, object]:
        """Return a per-layer summary used by the Statistics panel and EXPERIMENTS.md.

        The summary names the *active* spatial index per layer — ``"packed"``
        for the immutable flat index, ``"rtree"`` for the dynamic tree a table
        demotes to after edits — instead of pretending every table runs the
        dynamic R-tree.  Lazily-deferred secondary indexes are reported as
        such rather than force-built just to read their height.
        """
        layers_summary = []
        for layer in self.layers():
            table = self._tables[layer]
            rtree_stats = table.rtree.stats()
            layers_summary.append({
                "layer": layer,
                "rows": table.num_rows,
                "index": "rtree" if table.rtree.supports_updates else "packed",
                "rtree_height": rtree_stats.height,
                "rtree_nodes": rtree_stats.num_nodes,
                "btree_height": (
                    table.node1_index.height() if table.node_indexes_built else None
                ),
                "distinct_nodes": (
                    len(table.distinct_node_ids())
                    if table.node_indexes_built
                    else None
                ),
                "secondary_indexes": (
                    "built" if table.node_indexes_built
                    else "paged" if table.has_pending_secondary_pages
                    else "lazy"
                ),
            })
        return {
            "name": self.name,
            "backend": self.config.backend,
            "num_layers": self.num_layers,
            "layers": layers_summary,
        }

    def validate(self) -> None:
        """Check cross-index consistency on every layer (used by tests).

        Every row must be reachable through the R-tree, through both B+-trees and
        (when labelled) through the full-text index.
        """
        for layer in self.layers():
            table = self._tables[layer]
            row_ids = {row.row_id for row in table.scan()}
            rtree_ids = set(table.rtree.all_items())
            if row_ids != rtree_ids:
                raise StorageError(
                    f"layer {layer}: R-tree entries do not match stored rows "
                    f"({len(rtree_ids)} vs {len(row_ids)})"
                )
            for row in table.scan():
                if row.row_id not in table.node1_index.search(row.node1_id):
                    raise StorageError(f"layer {layer}: node1 B+-tree misses row {row.row_id}")
                if row.row_id not in table.node2_index.search(row.node2_id):
                    raise StorageError(f"layer {layer}: node2 B+-tree misses row {row.row_id}")

"""Binary serialisation of table rows.

The file-backed table stores rows in a simple length-prefixed binary record
format so that datasets survive process restarts without requiring SQLite.
The format is:

``[u32 record_length][u64 row_id][u64 node1_id][u64 node2_id]``
``[u16 len(node1_label)][node1_label utf-8]``
``[u16 len(edge_label)][edge_label utf-8]``
``[u16 len(node2_label)][node2_label utf-8]``
``[u16 len(geometry)][geometry bytes]``
"""

from __future__ import annotations

import hashlib
import struct
from typing import BinaryIO, Iterator

from ..errors import StorageError
from .schema import EdgeRow

__all__ = [
    "encode_row",
    "decode_row",
    "write_rows",
    "read_rows",
    "RowContentHasher",
]

_HEADER = struct.Struct("<QqqI")  # row_id, node1_id, node2_id, payload length marker
_LENGTH_PREFIX = struct.Struct("<I")
_FIELD_PREFIX = struct.Struct("<H")

_FP_IDS = struct.Struct("<qqq")  # row_id, node1_id, node2_id
_FP_LEN = struct.Struct("<I")
_FP_COUNT = struct.Struct("<Q")


class RowContentHasher:
    """Order-sensitive fingerprint over row records.

    Used by the SQLite backend to detect whether a persisted packed-index page
    still matches the rows it was built from: the save path hashes each record
    as it is inserted, the load path hashes each record as it is fetched, and
    the two digests agree exactly when row content, order and count are
    unchanged.  Records are the 7-tuples of
    :meth:`repro.storage.schema.EdgeRow.to_record`.
    """

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self._count = 0

    @property
    def count(self) -> int:
        """Number of records hashed so far."""
        return self._count

    def update(self, record: tuple) -> None:
        """Fold one row record into the fingerprint."""
        row_id, node1_id, node1_label, geometry, edge_label, node2_id, node2_label = record
        update = self._hash.update
        update(_FP_IDS.pack(row_id, node1_id, node2_id))
        for text in (node1_label, edge_label, node2_label):
            data = text.encode("utf-8")
            update(_FP_LEN.pack(len(data)))
            update(data)
        update(_FP_LEN.pack(len(geometry)))
        update(geometry)
        self._count += 1

    def hexdigest(self) -> str:
        """Return the fingerprint of everything hashed so far (count included)."""
        closing = self._hash.copy()
        closing.update(_FP_COUNT.pack(self._count))
        return closing.hexdigest()


def _pack_field(value: bytes) -> bytes:
    if len(value) > 0xFFFF:
        raise StorageError(f"field too long to serialise ({len(value)} bytes)")
    return _FIELD_PREFIX.pack(len(value)) + value


def encode_row(row: EdgeRow) -> bytes:
    """Encode one row into the binary record format (without the length prefix)."""
    node1_label = row.node1_label.encode("utf-8")
    edge_label = row.edge_label.encode("utf-8")
    node2_label = row.node2_label.encode("utf-8")
    payload = (
        _pack_field(node1_label)
        + _pack_field(edge_label)
        + _pack_field(node2_label)
        + _pack_field(row.edge_geometry)
    )
    header = _HEADER.pack(row.row_id, row.node1_id, row.node2_id, len(payload))
    return header + payload


def decode_row(blob: bytes) -> EdgeRow:
    """Decode one binary record produced by :func:`encode_row`."""
    if len(blob) < _HEADER.size:
        raise StorageError("truncated row record")
    row_id, node1_id, node2_id, payload_length = _HEADER.unpack_from(blob, 0)
    offset = _HEADER.size
    if len(blob) - offset != payload_length:
        raise StorageError("row payload length mismatch")

    fields: list[bytes] = []
    for _ in range(4):
        if offset + _FIELD_PREFIX.size > len(blob):
            raise StorageError("truncated row field")
        (length,) = _FIELD_PREFIX.unpack_from(blob, offset)
        offset += _FIELD_PREFIX.size
        fields.append(blob[offset:offset + length])
        offset += length
    node1_label, edge_label, node2_label, geometry = fields
    return EdgeRow(
        row_id=row_id,
        node1_id=node1_id,
        node1_label=node1_label.decode("utf-8"),
        edge_geometry=geometry,
        edge_label=edge_label.decode("utf-8"),
        node2_id=node2_id,
        node2_label=node2_label.decode("utf-8"),
    )


def write_rows(rows: Iterator[EdgeRow] | list[EdgeRow], handle: BinaryIO) -> int:
    """Write rows as length-prefixed records; return the number written."""
    count = 0
    for row in rows:
        record = encode_row(row)
        handle.write(_LENGTH_PREFIX.pack(len(record)))
        handle.write(record)
        count += 1
    return count


def read_rows(handle: BinaryIO) -> Iterator[EdgeRow]:
    """Yield rows from a stream written by :func:`write_rows`."""
    while True:
        prefix = handle.read(_LENGTH_PREFIX.size)
        if not prefix:
            return
        if len(prefix) != _LENGTH_PREFIX.size:
            raise StorageError("truncated record length prefix")
        (length,) = _LENGTH_PREFIX.unpack(prefix)
        record = handle.read(length)
        if len(record) != length:
            raise StorageError("truncated record body")
        yield decode_row(record)

"""Serialisation of secondary indexes as SQLite pages.

PR 2 persisted the packed spatial index as a versioned BLOB page so cold
starts skip the O(n log n) re-pack; this module extends the same
``layer_index_pages`` scheme to the *secondary* indexes — the node-id
B+-trees and the label tries — so keyword-heavy cold starts skip the lazy
build-from-store scan too.

Two page kinds per layer:

* ``node_btrees`` — both node-id B+-trees as one flat signed-64-bit array
  (``[tree count, then per tree: key count, then per key: key, value count,
  row ids...]``), restored through :meth:`BPlusTree.bulk_build` (direct leaf
  construction — no per-row inserts, no store scan).
* ``label_tries`` — the ``document -> label`` maps of both full-text indexes
  as compact JSON, restored through :meth:`FullTextIndex.bulk_build`, which
  tokenises each *distinct* label once and inserts each token/suffix with its
  whole document set (node labels repeat across many rows, so this is far
  cheaper than the per-row build the lazy path runs).

Pages carry the same row-content fingerprint as the packed spatial page and
are validated against it at load time; a stale or undecodable page simply
falls back to the lazy build.
"""

from __future__ import annotations

import json
import sys
from array import array

from ..errors import StorageError
from ..spatial.btree import BPlusTree
from ..spatial.trie import FullTextIndex

__all__ = [
    "NODE_BTREE_KIND",
    "LABEL_TRIE_KIND",
    "SECONDARY_PAGE_VERSION",
    "encode_node_btrees",
    "decode_node_btrees",
    "encode_label_tries",
    "decode_label_tries",
]

#: ``layer_index_pages.kind`` values for the two secondary-index pages.
NODE_BTREE_KIND = "node_btrees"
LABEL_TRIE_KIND = "label_tries"

#: Bumped whenever either payload layout changes (pages of other versions are
#: ignored at load time and rebuilt from rows).
SECONDARY_PAGE_VERSION = 1

_BTREE_MAGIC = b"GVB1"
_BIG_ENDIAN_FLAG = b"B"
_LITTLE_ENDIAN_FLAG = b"L"


# ------------------------------------------------------------------- B+-trees


def encode_node_btrees(node1: BPlusTree, node2: BPlusTree) -> bytes:
    """Serialise both node-id B+-trees into one flat int64 page."""
    ints: list[int] = [2]
    for tree in (node1, node2):
        postings = _postings(tree)
        ints.append(len(postings))
        for key, values in postings:
            ints.append(key)
            ints.append(len(values))
            ints.extend(values)
    flag = _LITTLE_ENDIAN_FLAG if sys.byteorder == "little" else _BIG_ENDIAN_FLAG
    return _BTREE_MAGIC + flag + array("q", ints).tobytes()


def _postings(tree: BPlusTree) -> list[tuple[int, list[int]]]:
    """``(key, sorted row ids)`` per distinct key, in key order."""
    grouped: list[tuple[int, list[int]]] = []
    for key, value in tree.items():
        if grouped and grouped[-1][0] == key:
            grouped[-1][1].append(int(value))  # type: ignore[arg-type]
        else:
            grouped.append((key, [int(value)]))  # type: ignore[arg-type]
    return grouped


def decode_node_btrees(payload: bytes, order: int) -> tuple[BPlusTree, BPlusTree]:
    """Restore both node-id B+-trees from a :func:`encode_node_btrees` page."""
    if len(payload) < 5 or payload[:4] != _BTREE_MAGIC:
        raise StorageError("not a node-btree page")
    flag = payload[4:5]
    if flag not in (_LITTLE_ENDIAN_FLAG, _BIG_ENDIAN_FLAG):
        raise StorageError(f"unknown endian flag {flag!r} in node-btree page")
    ints = array("q")
    try:
        ints.frombytes(payload[5:])
    except ValueError as exc:
        raise StorageError(f"truncated node-btree page: {exc}") from exc
    stored_little = flag == _LITTLE_ENDIAN_FLAG
    if stored_little != (sys.byteorder == "little"):
        ints.byteswap()
    cursor = 0

    def take(count: int) -> array:
        nonlocal cursor
        if cursor + count > len(ints):
            raise StorageError("node-btree page ends mid-structure")
        chunk = ints[cursor:cursor + count]
        cursor += count
        return chunk

    (tree_count,) = take(1)
    if tree_count != 2:
        raise StorageError(f"node-btree page holds {tree_count} trees, expected 2")
    trees: list[BPlusTree] = []
    for _ in range(2):
        (num_keys,) = take(1)
        items: list[tuple[int, list[object]]] = []
        for _ in range(num_keys):
            key, value_count = take(2)
            items.append((key, list(take(value_count))))
        trees.append(BPlusTree.bulk_build(items, order=order))
    if cursor != len(ints):
        raise StorageError("trailing data after node-btree page structures")
    return trees[0], trees[1]


# ---------------------------------------------------------------------- tries


def encode_label_tries(
    node_labels: FullTextIndex, edge_labels: FullTextIndex
) -> bytes:
    """Serialise both label indexes' ``document -> label`` maps as JSON.

    Node-label documents are ``(slot, row_id)`` tuples, stored as two-element
    arrays; edge-label documents are plain row ids.
    """
    return json.dumps({
        "node_labels": [
            [slot, row_id, label]
            for (slot, row_id), label in node_labels.labeled_documents()
        ],
        "edge_labels": [
            [row_id, label] for row_id, label in edge_labels.labeled_documents()
        ],
    }, separators=(",", ":")).encode()


def decode_label_tries(payload: bytes) -> tuple[FullTextIndex, FullTextIndex]:
    """Restore both label indexes from an :func:`encode_label_tries` page."""
    try:
        decoded = json.loads(payload)
        node_entries = [
            ((str(slot), int(row_id)), str(label))
            for slot, row_id, label in decoded["node_labels"]
        ]
        edge_entries = [
            (int(row_id), str(label)) for row_id, label in decoded["edge_labels"]
        ]
    except (ValueError, KeyError, TypeError) as exc:
        raise StorageError(f"undecodable label-trie page: {exc}") from exc
    return (
        FullTextIndex.bulk_build(node_entries),
        FullTextIndex.bulk_build(edge_entries),
    )

"""Node-importance ranking criteria.

The demo's Layer Panel lets users choose the abstraction criterion — "Node
degree, PageRank, HITS" — so all three are implemented here from scratch (no
networkx dependency) as functions returning ``node_id -> score`` mappings.
Higher scores mean more important nodes, which survive to higher abstraction
layers.
"""

from __future__ import annotations

from ..graph.model import Graph

__all__ = ["degree_scores", "pagerank_scores", "hits_scores", "create_ranking"]


def degree_scores(graph: Graph) -> dict[int, float]:
    """Score every node by its total degree."""
    return {node_id: float(graph.degree(node_id)) for node_id in graph.node_ids()}


def pagerank_scores(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1.0e-8,
) -> dict[int, float]:
    """Compute PageRank with the power method.

    Dangling nodes (no outgoing edges) redistribute their mass uniformly, the
    standard correction.  For undirected graphs each edge is treated as a pair
    of directed edges.
    """
    node_ids = sorted(graph.node_ids())
    count = len(node_ids)
    if count == 0:
        return {}
    index_of = {node_id: index for index, node_id in enumerate(node_ids)}

    # Build out-neighbour lists in index space.
    out_neighbours: list[list[int]] = [[] for _ in range(count)]
    for edge in graph.edges():
        source = index_of[edge.source]
        target = index_of[edge.target]
        out_neighbours[source].append(target)
        if not graph.directed and source != target:
            out_neighbours[target].append(source)

    rank = [1.0 / count] * count
    base = (1.0 - damping) / count
    for _ in range(max_iterations):
        next_rank = [base] * count
        dangling_mass = 0.0
        for index in range(count):
            targets = out_neighbours[index]
            if not targets:
                dangling_mass += rank[index]
                continue
            share = damping * rank[index] / len(targets)
            for target in targets:
                next_rank[target] += share
        if dangling_mass > 0:
            redistributed = damping * dangling_mass / count
            next_rank = [value + redistributed for value in next_rank]
        delta = sum(abs(next_rank[index] - rank[index]) for index in range(count))
        rank = next_rank
        if delta < tolerance:
            break
    return {node_id: rank[index_of[node_id]] for node_id in node_ids}


def hits_scores(
    graph: Graph,
    max_iterations: int = 100,
    tolerance: float = 1.0e-8,
) -> dict[int, float]:
    """Compute HITS and return the *authority* scores.

    Hub scores are folded in for undirected graphs (where the two coincide).
    Authority scores are what the demo uses to decide node importance.
    """
    node_ids = sorted(graph.node_ids())
    count = len(node_ids)
    if count == 0:
        return {}
    index_of = {node_id: index for index, node_id in enumerate(node_ids)}

    in_neighbours: list[list[int]] = [[] for _ in range(count)]
    out_neighbours: list[list[int]] = [[] for _ in range(count)]
    for edge in graph.edges():
        source = index_of[edge.source]
        target = index_of[edge.target]
        out_neighbours[source].append(target)
        in_neighbours[target].append(source)
        if not graph.directed and source != target:
            out_neighbours[target].append(source)
            in_neighbours[source].append(target)

    authority = [1.0] * count
    hub = [1.0] * count
    for _ in range(max_iterations):
        new_authority = [
            sum(hub[source] for source in in_neighbours[index]) for index in range(count)
        ]
        new_hub = [
            sum(new_authority[target] for target in out_neighbours[index])
            for index in range(count)
        ]
        authority_norm = max(sum(value * value for value in new_authority) ** 0.5, 1e-12)
        hub_norm = max(sum(value * value for value in new_hub) ** 0.5, 1e-12)
        new_authority = [value / authority_norm for value in new_authority]
        new_hub = [value / hub_norm for value in new_hub]
        delta = sum(abs(new_authority[index] - authority[index]) for index in range(count))
        authority, hub = new_authority, new_hub
        if delta < tolerance:
            break
    return {node_id: authority[index_of[node_id]] for node_id in node_ids}


def create_ranking(criterion: str):
    """Return the ranking function registered under ``criterion``.

    Supported criteria: ``"degree"``, ``"pagerank"``, ``"hits"``.
    """
    criterion = criterion.lower()
    if criterion == "degree":
        return degree_scores
    if criterion == "pagerank":
        return pagerank_scores
    if criterion == "hits":
        return hits_scores
    from ..errors import AbstractionError

    raise AbstractionError(
        f"unknown ranking criterion {criterion!r}; expected degree, pagerank or hits"
    )

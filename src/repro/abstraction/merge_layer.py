"""Merge-based (summarisation) abstraction.

The alternative abstraction family the paper mentions: "merging parts of the
graph into single nodes (like the graph summarization methods we mentioned in
the introduction)".  Communities are detected with a label-propagation pass
(cheap, deterministic given the seed) and each community collapses into one
super-node positioned at the centroid of its members — so the abstract layer's
layout is derived from the layer below, as the paper requires.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict

from ..errors import AbstractionError
from ..graph.model import Graph
from ..layout.base import Layout
from ..spatial.geometry import Point
from .base import AbstractionLayer, AbstractionMethod

__all__ = ["MergeAbstraction", "label_propagation_communities"]


def label_propagation_communities(
    graph: Graph, max_iterations: int = 20, seed: int = 0
) -> dict[int, int]:
    """Detect communities by synchronous label propagation.

    Returns a mapping ``node_id -> community id`` where community ids are dense
    integers starting at 0.  Deterministic for a fixed seed.
    """
    rng = random.Random(seed)
    labels = {node_id: node_id for node_id in graph.node_ids()}
    node_order = sorted(graph.node_ids())
    for _ in range(max_iterations):
        rng.shuffle(node_order)
        changed = 0
        for node_id in node_order:
            neighbours = graph.neighbors(node_id)
            if not neighbours:
                continue
            counts = Counter(labels[neighbour] for neighbour in neighbours)
            best_count = max(counts.values())
            # Deterministic tie-break: smallest label among the most frequent.
            best_label = min(label for label, count in counts.items() if count == best_count)
            if labels[node_id] != best_label:
                labels[node_id] = best_label
                changed += 1
        if changed == 0:
            break
    # Densify community ids.
    dense: dict[int, int] = {}
    result: dict[int, int] = {}
    for node_id in sorted(labels):
        label = labels[node_id]
        if label not in dense:
            dense[label] = len(dense)
        result[node_id] = dense[label]
    return result


class MergeAbstraction(AbstractionMethod):
    """Collapse communities into super-nodes.

    Parameters
    ----------
    min_community_size:
        Communities smaller than this are merged into their most connected
        neighbouring community (avoids a cloud of singleton super-nodes).
    seed:
        Seed for the label-propagation pass.
    """

    name = "merge"

    def __init__(self, min_community_size: int = 2, seed: int = 0) -> None:
        if min_community_size < 1:
            raise AbstractionError("min_community_size must be >= 1")
        self.min_community_size = min_community_size
        self.seed = seed

    def abstract(self, graph: Graph, layout: Layout, level: int) -> AbstractionLayer:
        if graph.num_nodes == 0:
            raise AbstractionError("cannot abstract an empty graph")
        communities = label_propagation_communities(graph, seed=self.seed)
        communities = self._absorb_small_communities(graph, communities)

        members: dict[int, list[int]] = defaultdict(list)
        for node_id, community in communities.items():
            members[community].append(node_id)

        abstract_graph = Graph(directed=graph.directed, name=f"{graph.name}-L{level}")
        abstract_layout_positions: dict[int, Point] = {}
        for community, node_ids in sorted(members.items()):
            node_ids.sort()
            # The super-node label borrows the label of the highest-degree member.
            representative = max(node_ids, key=lambda n: (graph.degree(n), -n))
            label = graph.node(representative).label or f"cluster-{community}"
            abstract_graph.add_node(
                community,
                label=f"{label} (+{len(node_ids) - 1})" if len(node_ids) > 1 else label,
                node_type="cluster",
                properties={"size": len(node_ids), "members": list(node_ids)},
            )
            xs = [layout.position(node_id).x for node_id in node_ids]
            ys = [layout.position(node_id).y for node_id in node_ids]
            abstract_layout_positions[community] = Point(sum(xs) / len(xs), sum(ys) / len(ys))

        # Super-edges: one per connected community pair, weight = multiplicity.
        super_edges: dict[tuple[int, int], int] = defaultdict(int)
        for edge in graph.edges():
            a = communities[edge.source]
            b = communities[edge.target]
            if a == b:
                continue
            key = (a, b) if graph.directed else (min(a, b), max(a, b))
            super_edges[key] += 1
        for (a, b), multiplicity in sorted(super_edges.items()):
            abstract_graph.add_edge(
                a, b, label=f"x{multiplicity}", edge_type="super", weight=float(multiplicity)
            )

        return AbstractionLayer(
            level=level,
            graph=abstract_graph,
            layout=Layout(abstract_layout_positions),
            node_mapping=dict(communities),
            criterion="merge:label-propagation",
        )

    def _absorb_small_communities(
        self, graph: Graph, communities: dict[int, int]
    ) -> dict[int, int]:
        """Merge undersized communities into their best-connected neighbour."""
        sizes = Counter(communities.values())
        small = {community for community, size in sizes.items() if size < self.min_community_size}
        if not small:
            return communities
        communities = dict(communities)
        for node_id in sorted(communities):
            community = communities[node_id]
            if community not in small:
                continue
            neighbour_communities = Counter(
                communities[neighbour]
                for neighbour in graph.neighbors(node_id)
                if communities[neighbour] not in small
            )
            if neighbour_communities:
                communities[node_id] = neighbour_communities.most_common(1)[0][0]
        # Re-densify ids after absorption.
        dense: dict[int, int] = {}
        result: dict[int, int] = {}
        for node_id in sorted(communities):
            community = communities[node_id]
            if community not in dense:
                dense[community] = len(dense)
            result[node_id] = dense[community]
        return result

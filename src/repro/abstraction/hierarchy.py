"""Abstraction-layer hierarchy builder (preprocessing Step 4).

"The overall hierarchy of layers is constructed in a bottom-up fashion, starting
from the initial graph at layer 0.  Each time we create a new graph at layer i,
its layout is based on the layout of the graph at layer i-1."  The builder takes
the input graph together with its *global* layout (the organizer's output) and
applies the configured abstraction method repeatedly.
"""

from __future__ import annotations

from ..config import AbstractionConfig
from ..errors import AbstractionError
from ..graph.model import Graph
from ..layout.base import Layout
from .base import AbstractionLayer, AbstractionMethod
from .filter_layer import FilterAbstraction
from .merge_layer import MergeAbstraction

__all__ = ["LayerHierarchy", "build_hierarchy", "create_abstraction_method"]


class LayerHierarchy:
    """The stack of abstraction layers produced by preprocessing Step 4.

    Layer 0 is always the input graph with its global layout; layers 1..n are
    increasingly abstract.  The hierarchy is what Step 5 stores and indexes: one
    database table per layer.
    """

    def __init__(self, layers: list[AbstractionLayer]) -> None:
        if not layers:
            raise AbstractionError("a hierarchy needs at least layer 0")
        for expected_level, layer in enumerate(layers):
            if layer.level != expected_level:
                raise AbstractionError(
                    f"layer levels must be consecutive from 0; "
                    f"found {layer.level} at position {expected_level}"
                )
        self._layers = list(layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    def __getitem__(self, level: int) -> AbstractionLayer:
        return self.layer(level)

    @property
    def num_layers(self) -> int:
        """Total number of layers including layer 0."""
        return len(self._layers)

    def layer(self, level: int) -> AbstractionLayer:
        """Return the layer at ``level``; raises for unknown levels."""
        if not 0 <= level < len(self._layers):
            raise AbstractionError(
                f"layer {level} does not exist (hierarchy has {len(self._layers)} layers)"
            )
        return self._layers[level]

    def layer_sizes(self) -> list[tuple[int, int]]:
        """Return ``(num_nodes, num_edges)`` per layer, bottom-up."""
        return [(layer.num_nodes, layer.num_edges) for layer in self._layers]

    def trace_up(self, node_id: int, from_level: int, to_level: int) -> int | None:
        """Return the node at ``to_level`` representing ``node_id`` at ``from_level``.

        Walks the per-layer ``node_mapping`` chains upwards; returns ``None`` if
        the node was filtered out before reaching ``to_level``.
        """
        if to_level < from_level:
            raise AbstractionError("trace_up requires to_level >= from_level")
        current = node_id
        for level in range(from_level + 1, to_level + 1):
            mapped = self.layer(level).represents(current)
            if mapped is None:
                return None
            current = mapped
        return current


def create_abstraction_method(
    criterion: str, keep_fraction: float = 0.5, seed: int = 0
) -> AbstractionMethod:
    """Create an abstraction method from a criterion name.

    ``"degree"``, ``"pagerank"`` and ``"hits"`` select filter-based abstraction
    with the corresponding ranking; ``"merge"`` selects community summarisation.
    """
    criterion = criterion.lower()
    if criterion in {"degree", "pagerank", "hits"}:
        return FilterAbstraction(criterion=criterion, keep_fraction=keep_fraction)
    if criterion == "merge":
        return MergeAbstraction(seed=seed)
    raise AbstractionError(
        f"unknown abstraction criterion {criterion!r}; "
        "expected degree, pagerank, hits or merge"
    )


def build_hierarchy(
    graph: Graph,
    layout: Layout,
    config: AbstractionConfig | None = None,
    method: AbstractionMethod | None = None,
) -> LayerHierarchy:
    """Build the layer hierarchy bottom-up from the input graph and its layout.

    Parameters
    ----------
    graph / layout:
        Layer 0: the input graph and its global-plane layout (organizer output).
    config:
        Abstraction configuration; ignored when an explicit ``method`` is given
        except for ``num_layers``.
    method:
        Abstraction method instance overriding the one derived from ``config``.
    """
    config = config or AbstractionConfig()
    if method is None:
        method = create_abstraction_method(
            config.criterion, keep_fraction=config.keep_fraction, seed=config.seed
        )

    layers = [
        AbstractionLayer(
            level=0,
            graph=graph,
            layout=layout,
            node_mapping={node_id: node_id for node_id in graph.node_ids()},
            criterion="input",
        )
    ]
    current_graph = graph
    current_layout = layout
    for level in range(1, config.num_layers + 1):
        if current_graph.num_nodes <= 1:
            # Nothing left to abstract; the paper places no lower bound on the
            # number of layers, so stop early rather than emit degenerate layers.
            break
        layer = method.abstract(current_graph, current_layout, level)
        if layer.graph.num_nodes >= current_graph.num_nodes and level > 1:
            # The method stopped making progress (e.g. merge found no communities).
            break
        layers.append(layer)
        current_graph = layer.graph
        current_layout = layer.layout
    return LayerHierarchy(layers)

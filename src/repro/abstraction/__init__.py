"""Abstraction layers: ranking criteria, filter/merge methods and the hierarchy builder."""

from .base import AbstractionLayer, AbstractionMethod
from .filter_layer import FilterAbstraction
from .hierarchy import LayerHierarchy, build_hierarchy, create_abstraction_method
from .merge_layer import MergeAbstraction, label_propagation_communities
from .ranking import create_ranking, degree_scores, hits_scores, pagerank_scores

__all__ = [
    "AbstractionLayer",
    "AbstractionMethod",
    "FilterAbstraction",
    "LayerHierarchy",
    "build_hierarchy",
    "create_abstraction_method",
    "MergeAbstraction",
    "label_propagation_communities",
    "create_ranking",
    "degree_scores",
    "hits_scores",
    "pagerank_scores",
]

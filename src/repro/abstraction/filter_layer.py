"""Filter-based abstraction.

The abstraction keeps only the "important" nodes of the layer below — the demo
describes it as viewing "different layers of the graph that contain only the
'important' nodes (e.g., sites whose PageRank score is above a threshold)".
Importance is computed by one of the ranking criteria (degree, PageRank, HITS)
and either a retention fraction or an absolute score threshold selects the
survivors.  Surviving nodes keep their coordinates, so the drawing at layer i is
a sparsified version of layer i-1 and the user's mental map is preserved.
"""

from __future__ import annotations

from ..errors import AbstractionError
from ..graph.model import Graph
from ..layout.base import Layout
from .base import AbstractionLayer, AbstractionMethod
from .ranking import create_ranking

__all__ = ["FilterAbstraction"]


class FilterAbstraction(AbstractionMethod):
    """Keep the top-ranked fraction of nodes (or nodes above a threshold).

    Parameters
    ----------
    criterion:
        Ranking criterion name: ``"degree"``, ``"pagerank"`` or ``"hits"``.
    keep_fraction:
        Fraction of nodes retained (ignored when ``threshold`` is given).
    threshold:
        Absolute score threshold; nodes scoring >= ``threshold`` survive.
    keep_connecting_edges:
        When ``True`` (default) an edge survives iff both endpoints survive.
        When ``False`` surviving nodes that were connected through a removed
        node are linked by a synthetic ``via`` edge, which keeps paths visible
        at high abstraction levels.
    """

    name = "filter"

    def __init__(
        self,
        criterion: str = "degree",
        keep_fraction: float = 0.5,
        threshold: float | None = None,
        keep_connecting_edges: bool = True,
    ) -> None:
        if threshold is None and not 0.0 < keep_fraction < 1.0:
            raise AbstractionError("keep_fraction must be in (0, 1)")
        self.criterion = criterion
        self.keep_fraction = keep_fraction
        self.threshold = threshold
        self.keep_connecting_edges = keep_connecting_edges
        self._ranking = create_ranking(criterion)

    def abstract(self, graph: Graph, layout: Layout, level: int) -> AbstractionLayer:
        if graph.num_nodes == 0:
            raise AbstractionError("cannot abstract an empty graph")
        scores = self._ranking(graph)
        survivors = self._select_survivors(scores)
        abstract_graph = graph.subgraph(survivors, name=f"{graph.name}-L{level}")

        if not self.keep_connecting_edges:
            self._add_via_edges(graph, abstract_graph, survivors)

        abstract_layout = Layout({
            node_id: layout.position(node_id) for node_id in survivors
        })
        mapping = {node_id: node_id for node_id in survivors}
        return AbstractionLayer(
            level=level,
            graph=abstract_graph,
            layout=abstract_layout,
            node_mapping=mapping,
            criterion=f"filter:{self.criterion}",
        )

    def _select_survivors(self, scores: dict[int, float]) -> set[int]:
        if self.threshold is not None:
            survivors = {node_id for node_id, score in scores.items() if score >= self.threshold}
            if not survivors:
                # Never produce an empty layer: keep the single best node.
                best = max(scores, key=lambda node_id: (scores[node_id], -node_id))
                survivors = {best}
            return survivors
        target = max(1, int(round(len(scores) * self.keep_fraction)))
        ordered = sorted(scores, key=lambda node_id: (-scores[node_id], node_id))
        return set(ordered[:target])

    @staticmethod
    def _add_via_edges(graph: Graph, abstract_graph: Graph, survivors: set[int]) -> None:
        """Connect surviving nodes that share a removed intermediate node."""
        for node_id in graph.node_ids():
            if node_id in survivors:
                continue
            surviving_neighbours = sorted(
                neighbour for neighbour in graph.neighbors(node_id) if neighbour in survivors
            )
            for i, first in enumerate(surviving_neighbours):
                for second in surviving_neighbours[i + 1:]:
                    if not abstract_graph.has_edge(first, second):
                        abstract_graph.add_edge(first, second, label="via", edge_type="via")

"""Abstraction method interface and the :class:`AbstractionLayer` result type.

Paper §II.A, "Building Abstraction Layers": a layer *i* (i > 0) is a new graph
produced by applying an abstraction method to the graph at layer *i-1*, "either
by merging parts of the graph into single nodes ... or by filtering parts of
the graph according to a metric, e.g., a node ranking criterion like PageRank".
Each layer's layout is derived from the previous layer's layout.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..graph.model import Graph
from ..layout.base import Layout

__all__ = ["AbstractionLayer", "AbstractionMethod"]


@dataclass
class AbstractionLayer:
    """One abstraction layer: a graph, its layout, and its provenance.

    Attributes
    ----------
    level:
        Layer index; 0 is the original input graph.
    graph:
        The (possibly summarised or filtered) graph at this layer.
    layout:
        Global-plane coordinates for every node of ``graph``; derived from the
        layer below so the user's mental map survives vertical navigation.
    node_mapping:
        Mapping ``lower_layer_node_id -> this_layer_node_id`` describing which
        node of this layer represents each node of the layer below.  For
        filter-based abstractions only surviving nodes appear (identity
        mapping); for merge-based abstractions many-to-one entries appear.
    criterion:
        Human-readable description of the abstraction criterion (shown in the
        Layer Panel).
    """

    level: int
    graph: Graph
    layout: Layout
    node_mapping: dict[int, int] = field(default_factory=dict)
    criterion: str = ""

    @property
    def num_nodes(self) -> int:
        """Number of nodes at this layer."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges at this layer."""
        return self.graph.num_edges

    def represents(self, lower_node_id: int) -> int | None:
        """Return the node of this layer representing ``lower_node_id`` (or ``None``)."""
        return self.node_mapping.get(lower_node_id)


class AbstractionMethod(ABC):
    """Interface of every abstraction method."""

    #: Registry name; subclasses override.
    name = "base"

    @abstractmethod
    def abstract(
        self, graph: Graph, layout: Layout, level: int
    ) -> AbstractionLayer:
        """Produce the next abstraction layer from ``(graph, layout)``.

        ``level`` is the index of the layer being produced (the input graph is
        at ``level - 1``).
        """

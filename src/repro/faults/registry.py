"""Deterministic, seeded fault-injection registry.

Robustness claims ("an acknowledged edit survives a SIGKILL", "the router
retries a write across an owner crash without double-apply") are only testable
if the failures themselves are reproducible.  This module provides named
**injection points** compiled into the hot paths of the write and cluster
subsystems, and a :class:`FaultPlan` — a seeded schedule of :class:`FaultRule`
triggers — that decides, deterministically, which hits of which point misfire
and how.

Injection points currently wired in (the catalog; see ``docs/robustness.md``):

======================  =====================================================
``journal.append``      before a journal record's bytes reach the file
                        (``error`` fails the append; ``torn`` writes half the
                        frame first — a crash mid-``write``)
``journal.fsync``       before the fsync of an append or an explicit sync
``journal.truncate``    before a checkpoint's journal truncation
``checkpoint.save``     before a checkpoint's incremental ``save_to_sqlite``
``checkpoint.truncate`` between the save and the truncation (the
                        double-apply crash window)
``worker.request``      worker HTTP endpoint, before dispatching a request
``worker.response``     worker HTTP endpoint, after the handler but before
                        the response bytes are written (``drop`` closes the
                        socket — the "worker died after applying, before
                        acking" shape; ``kill`` SIGKILLs the process)
``client.exchange``     router side, between writing a proxied request and
                        reading the worker's response
``replication.feed``    replica side, before each poll of the owner's
                        journal-tail feed (``error``/``drop`` fail the poll,
                        ``delay`` stalls it — a lagging or partitioned
                        replica)
======================  =====================================================

A point costs one module-global ``None`` check when no plan is installed —
the production fast path.  Plans are installed per process: explicitly via
:func:`install`, or (for spawned worker processes) from the ``REPRO_FAULTS``
environment variable or ``ClusterConfig.fault_plan`` at worker start.  Rules
can be scoped to one process identity (``worker="w0"``; workers call
:func:`set_identity` at startup), so a cluster-wide plan can SIGKILL exactly
the dataset's rendezvous owner and nobody else.

Everything is thread-safe: hit counters advance under a lock, and the
per-rule ``random.Random`` streams are derived from ``(plan seed, rule
index)``, so two runs of the same plan misfire on exactly the same hits.
"""

from __future__ import annotations

import json
import logging
import os
import random
import signal
import threading
import time
from dataclasses import asdict, dataclass, field

from ..obs.trace import current_trace_id

_log = logging.getLogger("repro.faults")

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear",
    "fault_check",
    "install",
    "install_from_env",
    "set_identity",
]

#: Environment variable holding a JSON-encoded plan; spawned worker processes
#: inherit it and auto-install at import time.
ENV_VAR = "REPRO_FAULTS"

_ACTIONS = {"error", "torn", "drop", "delay", "kill"}


class FaultInjected(Exception):
    """Raised at an injection point when a rule with a raising action fires.

    ``action`` tells the instrumented call site what failure to simulate:
    ``error`` (a generic I/O or handler failure), ``torn`` (a partial journal
    write), or ``drop`` (close the connection without responding).  ``delay``
    and ``kill`` never surface as this exception — they happen inside the
    check itself.

    ``trace_id`` is the request trace active at the injection point (empty
    when the hit happened outside any traced request), so an injected
    failure's error message and log line tie back to the exact request —
    across both attempts of a router retry, which reuse one id.
    """

    def __init__(self, point: str, action: str, rule: str = "",
                 trace_id: str = "") -> None:
        super().__init__(f"injected {action!r} fault at {point!r}"
                         + (f" (rule {rule!r})" if rule else "")
                         + (f" [trace {trace_id}]" if trace_id else ""))
        self.point = point
        self.action = action
        self.rule = rule
        self.trace_id = trace_id


@dataclass(frozen=True)
class FaultRule:
    """One trigger schedule for one injection point.

    A rule observes every *hit* of its point (after ``worker`` / ``match``
    scoping) and fires according to its schedule:

    ``nth``
        Fire on exactly the nth scoped hit (1-based).  "Fail the 3rd fsync".
    ``every``
        Fire on every k-th scoped hit.  "Drop every 5th proxy connection".
    ``after``
        Skip the first ``after`` scoped hits, then let ``nth`` / ``every`` /
        ``probability`` apply to the rest.
    ``times``
        Stop firing after this many fires (``0``: unlimited).
    ``probability``
        Fire each eligible hit with this probability, from the rule's own
        seeded random stream — deterministic for a fixed plan seed.

    ``worker`` scopes the rule to one process identity (see
    :func:`set_identity`); ``match`` requires the substring to occur in one of
    the call site's context values (e.g. the request target).  ``delay_ms``
    applies to ``delay`` (sleep then continue) and ``kill`` (sleep in a
    background thread, then SIGKILL — "die 10ms after the ack went out").
    """

    point: str
    action: str = "error"
    nth: int = 0
    every: int = 0
    after: int = 0
    times: int = 0
    probability: float = 1.0
    delay_ms: float = 0.0
    worker: str = ""
    match: str = ""
    name: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                + ", ".join(sorted(_ACTIONS))
            )
        if not self.point:
            raise ValueError("a fault rule needs an injection point")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")


@dataclass
class _RuleState:
    """Mutable per-rule bookkeeping (hits seen, fires granted, RNG stream)."""

    rule: FaultRule
    rng: random.Random
    hits: int = 0
    fires: int = 0


class FaultPlan:
    """A named, seeded set of fault rules evaluated at every injection point."""

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...],
                 seed: int = 0, name: str = "plan") -> None:
        self.name = name
        self.seed = int(seed)
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._states = [
            _RuleState(rule=rule, rng=random.Random(f"{self.seed}:{index}"))
            for index, rule in enumerate(self.rules)
        ]

    # -------------------------------------------------------------- evaluation

    def check(self, point: str, ctx: dict[str, object], identity: str,
              trace_id: str = "") -> None:
        """Evaluate every rule against one hit of ``point``.

        Raises :class:`FaultInjected` for raising actions; sleeps for
        ``delay``; arms (or performs) a SIGKILL for ``kill``.  At most one
        rule fires per hit — the first matching one in plan order.
        ``trace_id`` (the request trace active at the call site) is logged
        with the fire and carried on the raised exception.
        """
        fired: FaultRule | None = None
        with self._lock:
            for state in self._states:
                rule = state.rule
                if rule.point != point:
                    continue
                if rule.worker and rule.worker != identity:
                    continue
                if rule.match and not any(
                    rule.match in str(value) for value in ctx.values()
                ):
                    continue
                state.hits += 1
                scoped = state.hits
                if rule.after and scoped <= rule.after:
                    continue
                if rule.times and state.fires >= rule.times:
                    continue
                if rule.nth and scoped - rule.after != rule.nth:
                    continue
                if rule.every and (scoped - rule.after) % rule.every != 0:
                    continue
                if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                    continue
                state.fires += 1
                fired = rule
                break
        if fired is None:
            return
        _log.warning(
            "fault %r fired at %r (action %r)%s",
            fired.name or "<unnamed>", point, fired.action,
            f" [trace {trace_id}]" if trace_id else "",
        )
        self._perform(point, fired, trace_id)

    @staticmethod
    def _perform(point: str, rule: FaultRule, trace_id: str = "") -> None:
        if rule.action == "delay":
            # Deliberately blocking, even on an event loop: the simulated
            # failure is a *hung process*, not a politely-async slow query.
            time.sleep(rule.delay_ms / 1000.0)
            return
        if rule.action == "kill":
            if rule.delay_ms > 0:
                # Let the caller finish (flush the ack) before dying — the
                # "SIGKILL 10ms after ack" schedule.
                timer = threading.Timer(
                    rule.delay_ms / 1000.0,
                    os.kill, args=(os.getpid(), signal.SIGKILL),
                )
                timer.daemon = True
                timer.start()
                return
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - the line above does not return
        raise FaultInjected(point, rule.action, rule.name, trace_id)

    # ------------------------------------------------------------- observation

    def fire_count(self, point: str | None = None) -> int:
        """Total fires so far, optionally restricted to one point."""
        with self._lock:
            return sum(
                state.fires for state in self._states
                if point is None or state.rule.point == point
            )

    def hit_count(self, point: str | None = None) -> int:
        """Total scoped hits observed, optionally restricted to one point."""
        with self._lock:
            return sum(
                state.hits for state in self._states
                if point is None or state.rule.point == point
            )

    # ----------------------------------------------------------- serialisation

    def to_json(self) -> str:
        """Serialise the plan (rules + seed) for env/config transport."""
        return json.dumps({
            "name": self.name,
            "seed": self.seed,
            "rules": [asdict(rule) for rule in self.rules],
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        decoded = json.loads(text)
        rules = [FaultRule(**raw) for raw in decoded.get("rules", [])]
        return cls(
            rules, seed=int(decoded.get("seed", 0)),
            name=str(decoded.get("name", "plan")),
        )


# ------------------------------------------------------------- module globals

_PLAN: FaultPlan | None = None
_IDENTITY = ""


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` in this process; returns it."""
    global _PLAN
    _PLAN = plan
    return plan


def clear() -> None:
    """Deactivate fault injection in this process."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, or ``None``."""
    return _PLAN


def set_identity(identity: str) -> None:
    """Declare this process's identity for ``FaultRule.worker`` scoping."""
    global _IDENTITY
    _IDENTITY = identity


def install_from_env() -> FaultPlan | None:
    """Install the plan carried by ``$REPRO_FAULTS`` (``None`` if unset)."""
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    return install(FaultPlan.from_json(text))


def fault_check(point: str, **ctx: object) -> None:
    """The injection-point hook compiled into instrumented call sites.

    One ``None`` check when no plan is installed; with a plan, evaluates the
    rules (raising :class:`FaultInjected`, sleeping, or killing the process
    as scheduled).
    """
    plan = _PLAN
    if plan is None:
        return
    plan.check(point, ctx, _IDENTITY, trace_id=current_trace_id() or "")


# Spawned worker processes inherit the router's environment: a plan published
# via $REPRO_FAULTS becomes active in every process that imports this module.
install_from_env()

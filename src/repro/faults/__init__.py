"""Deterministic fault injection for the write and cluster subsystems."""

from .registry import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    clear,
    fault_check,
    install,
    install_from_env,
    set_identity,
)

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear",
    "fault_check",
    "install",
    "install_from_env",
    "set_identity",
]

"""Graph statistics.

These functions back the demo UI's *Statistics* panel ("average node degree,
density, etc.") and are also used by the benchmark harness to characterise the
synthetic datasets (the paper motivates the Step-1 timing difference between
Wikidata and Patent by their average node degree).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import Graph
from .traversal import connected_components

__all__ = [
    "GraphStatistics",
    "degree_histogram",
    "average_degree",
    "density",
    "clustering_coefficient",
    "compute_statistics",
]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics for a graph, as shown in the Statistics panel."""

    name: str
    num_nodes: int
    num_edges: int
    directed: bool
    average_degree: float
    max_degree: int
    min_degree: int
    density: float
    num_components: int
    largest_component_size: int
    num_node_types: int
    num_edge_types: int

    def as_dict(self) -> dict[str, object]:
        """Return the statistics as a JSON-serialisable dictionary."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "directed": self.directed,
            "average_degree": self.average_degree,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "density": self.density,
            "num_components": self.num_components,
            "largest_component_size": self.largest_component_size,
            "num_node_types": self.num_node_types,
            "num_edge_types": self.num_edge_types,
        }


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Return a mapping ``degree -> number of nodes with that degree``."""
    histogram: dict[int, int] = {}
    for node_id in graph.node_ids():
        degree = graph.degree(node_id)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Return the average node degree.

    For directed graphs each edge contributes to both an in- and an out-degree,
    so the average equals ``2 * |E| / |V|`` in both the directed and undirected
    cases (self-loops count twice).
    """
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def density(graph: Graph) -> float:
    """Return the graph density in ``[0, 1]``.

    Directed: ``|E| / (|V| * (|V| - 1))``; undirected: twice that.
    """
    n = graph.num_nodes
    if n <= 1:
        return 0.0
    possible = n * (n - 1)
    if not graph.directed:
        possible //= 2
    return graph.num_edges / possible


def clustering_coefficient(graph: Graph, sample: int | None = None, seed: int = 0) -> float:
    """Return the (optionally sampled) average local clustering coefficient.

    Direction is ignored.  ``sample`` limits the computation to a deterministic
    pseudo-random subset of nodes, which keeps the Statistics panel responsive on
    larger graphs.
    """
    node_ids = sorted(graph.node_ids())
    if not node_ids:
        return 0.0
    if sample is not None and sample < len(node_ids):
        # Deterministic sampling without importing random: use a simple LCG so the
        # statistic is stable across runs with the same seed.
        state = seed or 1
        chosen: set[int] = set()
        while len(chosen) < sample:
            state = (1103515245 * state + 12345) % (2**31)
            chosen.add(node_ids[state % len(node_ids)])
        node_ids = sorted(chosen)
    total = 0.0
    for node_id in node_ids:
        neighbours = sorted(graph.neighbors(node_id) - {node_id})
        k = len(neighbours)
        if k < 2:
            continue
        links = 0
        for i, first in enumerate(neighbours):
            for second in neighbours[i + 1:]:
                if graph.has_edge(first, second) or graph.has_edge(second, first):
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(node_ids)


def degree_power_law_exponent(graph: Graph) -> float:
    """Estimate the power-law exponent of the degree distribution via MLE.

    Uses the standard continuous approximation ``1 + n / sum(ln(d_i / d_min))``
    over nodes with degree >= 1.  Returns ``0.0`` for graphs where the estimate
    is undefined (no edges).
    """
    degrees = [graph.degree(node_id) for node_id in graph.node_ids()]
    degrees = [d for d in degrees if d >= 1]
    if not degrees:
        return 0.0
    d_min = min(degrees)
    log_sum = sum(math.log(d / d_min) for d in degrees if d > d_min)
    if log_sum == 0.0:
        return 0.0
    return 1.0 + len(degrees) / log_sum


def compute_statistics(graph: Graph) -> GraphStatistics:
    """Compute the full statistics bundle for the Statistics panel."""
    degrees = [graph.degree(node_id) for node_id in graph.node_ids()]
    components = connected_components(graph)
    return GraphStatistics(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        directed=graph.directed,
        average_degree=average_degree(graph),
        max_degree=max(degrees) if degrees else 0,
        min_degree=min(degrees) if degrees else 0,
        density=density(graph),
        num_components=len(components),
        largest_component_size=len(components[0]) if components else 0,
        num_node_types=len(graph.node_types()),
        num_edge_types=len(graph.edge_types()),
    )

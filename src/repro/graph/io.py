"""Graph readers and writers.

Three interchange formats are supported:

* **edge list** — whitespace-separated ``source target [label]`` lines, the
  format used by the SNAP repository from which the paper's Patent dataset is
  taken (``#`` lines are comments);
* **triples** — tab-separated ``node1_label  edge_label  node2_label`` lines, a
  simplified N-Triples form matching the paper's RDF (Wikidata) input;
* **JSON** — a self-describing round-trip format preserving all node/edge
  attributes.

Conversion helpers to and from :mod:`networkx` are provided for interoperability
with the layout baselines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

import networkx as nx

from ..errors import GraphFormatError
from .model import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_triples",
    "write_triples",
    "read_json",
    "write_json",
    "to_networkx",
    "from_networkx",
]


# ------------------------------------------------------------------ edge list


def read_edge_list(
    path: str | Path, directed: bool = True, name: str = ""
) -> Graph:
    """Read a SNAP-style edge list file.

    Lines starting with ``#`` are ignored.  Each data line must contain at least
    two integer ids; an optional third column is stored as the edge label.
    """
    graph = Graph(directed=directed, name=name or Path(path).stem)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            _read_edge_list_stream(handle, graph)
    except UnicodeDecodeError as exc:
        raise GraphFormatError(f"{path} is not a UTF-8 text edge list: {exc}") from exc
    return graph


def _read_edge_list_stream(handle: TextIO, graph: Graph) -> None:
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two columns, got {stripped!r}"
            )
        try:
            source = int(parts[0])
            target = int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: node ids must be integers ({stripped!r})"
            ) from exc
        label = parts[2] if len(parts) > 2 else ""
        graph.add_edge(source, target, label=label)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write the graph as a SNAP-style edge list (labels in the third column)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# graph: {graph.name}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for edge in graph.edges():
            if edge.label:
                handle.write(f"{edge.source}\t{edge.target}\t{edge.label}\n")
            else:
                handle.write(f"{edge.source}\t{edge.target}\n")


# -------------------------------------------------------------------- triples


def read_triples(path: str | Path, directed: bool = True, name: str = "") -> Graph:
    """Read a tab-separated triples file (``node1 \\t edge \\t node2``).

    Node labels are interned: identical labels map to the same node id.  This is
    the simplified RDF input format corresponding to the paper's Wikidata export.
    """
    graph = Graph(directed=directed, name=name or Path(path).stem)
    label_to_id: dict[str, int] = {}

    def intern(label: str) -> int:
        node_id = label_to_id.get(label)
        if node_id is None:
            node_id = len(label_to_id)
            label_to_id[label] = node_id
            graph.ensure_node(node_id, label=label)
        return node_id

    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.rstrip("\n")
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split("\t")
                if len(parts) != 3:
                    raise GraphFormatError(
                        f"line {line_number}: expected 3 tab-separated fields, "
                        f"got {len(parts)}"
                    )
                subject, predicate, obj = (part.strip() for part in parts)
                graph.add_edge(intern(subject), intern(obj), label=predicate)
    except UnicodeDecodeError as exc:
        raise GraphFormatError(f"{path} is not a UTF-8 triples file: {exc}") from exc
    return graph


def write_triples(graph: Graph, path: str | Path) -> None:
    """Write the graph as tab-separated ``label \\t edge_label \\t label`` triples."""
    with open(path, "w", encoding="utf-8") as handle:
        for edge in graph.edges():
            source_label = graph.node(edge.source).label or str(edge.source)
            target_label = graph.node(edge.target).label or str(edge.target)
            handle.write(f"{source_label}\t{edge.label}\t{target_label}\n")


# ----------------------------------------------------------------------- JSON


def write_json(graph: Graph, path: str | Path) -> None:
    """Write the graph to a JSON file preserving all attributes."""
    payload = {
        "name": graph.name,
        "directed": graph.directed,
        "nodes": [
            {
                "id": node.node_id,
                "label": node.label,
                "type": node.node_type,
                "properties": node.properties,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "type": edge.edge_type,
                "weight": edge.weight,
                "properties": edge.properties,
            }
            for edge in graph.edges()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def read_json(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"invalid JSON graph file: {exc}") from exc
    if "nodes" not in payload or "edges" not in payload:
        raise GraphFormatError("JSON graph file must contain 'nodes' and 'edges'")
    graph = Graph(directed=bool(payload.get("directed", True)), name=payload.get("name", ""))
    for node in payload["nodes"]:
        graph.add_node(
            int(node["id"]),
            label=node.get("label", ""),
            node_type=node.get("type", ""),
            properties=node.get("properties", {}),
        )
    for edge in payload["edges"]:
        graph.add_edge(
            int(edge["source"]),
            int(edge["target"]),
            label=edge.get("label", ""),
            edge_type=edge.get("type", ""),
            weight=float(edge.get("weight", 1.0)),
            properties=edge.get("properties", {}),
        )
    return graph


# ------------------------------------------------------------------ networkx


def to_networkx(graph: Graph) -> "nx.Graph | nx.DiGraph":
    """Convert to a networkx graph (attributes preserved)."""
    result: nx.Graph | nx.DiGraph = nx.DiGraph() if graph.directed else nx.Graph()
    result.graph["name"] = graph.name
    for node in graph.nodes():
        result.add_node(
            node.node_id, label=node.label, node_type=node.node_type, **node.properties
        )
    for edge in graph.edges():
        result.add_edge(
            edge.source,
            edge.target,
            label=edge.label,
            edge_type=edge.edge_type,
            weight=edge.weight,
        )
    return result


def from_networkx(nx_graph: "nx.Graph | nx.DiGraph", name: str = "") -> Graph:
    """Convert a networkx graph whose node ids are (or can be mapped to) ints."""
    graph = Graph(directed=nx_graph.is_directed(), name=name or nx_graph.graph.get("name", ""))
    id_map: dict[object, int] = {}
    for index, (node, data) in enumerate(sorted(nx_graph.nodes(data=True), key=lambda item: str(item[0]))):
        node_id = node if isinstance(node, int) else index
        while graph.has_node(node_id):
            node_id += 1
        id_map[node] = node_id
        graph.add_node(
            node_id,
            label=str(data.get("label", node)),
            node_type=str(data.get("node_type", "")),
        )
    for source, target, data in nx_graph.edges(data=True):
        graph.add_edge(
            id_map[source],
            id_map[target],
            label=str(data.get("label", "")),
            edge_type=str(data.get("edge_type", "")),
            weight=float(data.get("weight", 1.0)),
        )
    return graph


def edges_as_tuples(graph: Graph) -> Iterable[tuple[int, int]]:
    """Yield ``(source, target)`` tuples; convenience for tests and benchmarks."""
    for edge in graph.edges():
        yield edge.source, edge.target

"""Graph traversal utilities.

These are the building blocks used by the partitioners (BFS growth), the
abstraction builders (connected components of summarised graphs), the
statistics panel (component counts) and the demo's "focus on node" mode
(neighbourhood extraction, path following).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from ..errors import NodeNotFoundError
from .model import Graph

__all__ = [
    "bfs_order",
    "bfs_layers",
    "dfs_order",
    "connected_components",
    "largest_component",
    "shortest_path",
    "ego_network",
    "k_hop_neighbourhood",
]


def bfs_order(graph: Graph, start: int, directed: bool = False) -> list[int]:
    """Return nodes in breadth-first order from ``start``.

    Parameters
    ----------
    directed:
        When ``False`` (default) edges are followed in both directions, which is
        what the partition-growing and component algorithms need.
    """
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    visited = {start}
    order = [start]
    queue: deque[int] = deque([start])
    while queue:
        current = queue.popleft()
        neighbours = graph.successors(current) if directed else graph.neighbors(current)
        for neighbour in sorted(neighbours):
            if neighbour not in visited:
                visited.add(neighbour)
                order.append(neighbour)
                queue.append(neighbour)
    return order


def bfs_layers(graph: Graph, start: int, directed: bool = False) -> list[list[int]]:
    """Return nodes grouped by BFS depth from ``start`` (depth 0 is ``[start]``)."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    visited = {start}
    layers: list[list[int]] = [[start]]
    frontier = [start]
    while frontier:
        next_frontier: list[int] = []
        for current in frontier:
            neighbours = (
                graph.successors(current) if directed else graph.neighbors(current)
            )
            for neighbour in sorted(neighbours):
                if neighbour not in visited:
                    visited.add(neighbour)
                    next_frontier.append(neighbour)
        if next_frontier:
            layers.append(next_frontier)
        frontier = next_frontier
    return layers


def dfs_order(graph: Graph, start: int, directed: bool = False) -> list[int]:
    """Return nodes in (iterative) depth-first order from ``start``."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    visited: set[int] = set()
    order: list[int] = []
    stack = [start]
    while stack:
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        neighbours = graph.successors(current) if directed else graph.neighbors(current)
        for neighbour in sorted(neighbours, reverse=True):
            if neighbour not in visited:
                stack.append(neighbour)
    return order


def connected_components(graph: Graph) -> list[list[int]]:
    """Return weakly connected components, largest first.

    Edge direction is ignored, matching the notion of connectivity relevant to
    visual exploration (a path can be followed on the canvas regardless of arrow
    direction).
    """
    remaining = set(graph.node_ids())
    components: list[list[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = bfs_order(graph, start, directed=False)
        components.append(component)
        remaining.difference_update(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> list[int]:
    """Return the node ids of the largest weakly connected component."""
    components = connected_components(graph)
    return components[0] if components else []


def shortest_path(
    graph: Graph, source: int, target: int, directed: bool = False
) -> list[int] | None:
    """Return the shortest (unweighted) path from ``source`` to ``target``.

    Returns ``None`` when no path exists.  Used by the pathway-navigation demo
    scenario ("Christos Faloutsos - has-author - article - has-author" paths).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: dict[int, int] = {source: source}
    queue: deque[int] = deque([source])
    while queue:
        current = queue.popleft()
        neighbours = graph.successors(current) if directed else graph.neighbors(current)
        for neighbour in sorted(neighbours):
            if neighbour in parents:
                continue
            parents[neighbour] = current
            if neighbour == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbour)
    return None


def ego_network(graph: Graph, center: int) -> Graph:
    """Return the induced subgraph over ``center`` and its direct neighbours.

    This is exactly the "Focus on node" mode of the demo: only the selected node
    and its neighbours stay visible.
    """
    if not graph.has_node(center):
        raise NodeNotFoundError(center)
    nodes = {center} | graph.neighbors(center)
    return graph.subgraph(nodes, name=f"ego-{center}")


def k_hop_neighbourhood(graph: Graph, center: int, hops: int) -> set[int]:
    """Return the set of node ids within ``hops`` undirected hops of ``center``."""
    if hops < 0:
        raise ValueError("hops must be >= 0")
    if not graph.has_node(center):
        raise NodeNotFoundError(center)
    visited = {center}
    frontier = {center}
    for _ in range(hops):
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier |= graph.neighbors(node) - visited
        visited |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return visited


def filter_nodes(graph: Graph, predicate: Callable[[int], bool]) -> Iterator[int]:
    """Yield node ids for which ``predicate`` returns ``True``."""
    for node_id in graph.node_ids():
        if predicate(node_id):
            yield node_id

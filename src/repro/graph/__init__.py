"""Graph substrate: data model, IO, synthetic generators, metrics and traversals."""

from .model import Edge, Graph, Node
from .metrics import GraphStatistics, compute_statistics
from .datasets import acm_like, available_datasets, load_dataset, web_graph_like
from .generators import (
    barabasi_albert,
    community_graph,
    complete_graph,
    erdos_renyi,
    grid_graph,
    patent_like,
    path_graph,
    star_graph,
    wikidata_like,
)
from .io import (
    from_networkx,
    read_edge_list,
    read_json,
    read_triples,
    to_networkx,
    write_edge_list,
    write_json,
    write_triples,
)
from .traversal import (
    bfs_layers,
    bfs_order,
    connected_components,
    dfs_order,
    ego_network,
    k_hop_neighbourhood,
    largest_component,
    shortest_path,
)

__all__ = [
    "acm_like",
    "available_datasets",
    "load_dataset",
    "web_graph_like",
    "Edge",
    "Graph",
    "Node",
    "GraphStatistics",
    "compute_statistics",
    "barabasi_albert",
    "community_graph",
    "complete_graph",
    "erdos_renyi",
    "grid_graph",
    "patent_like",
    "path_graph",
    "star_graph",
    "wikidata_like",
    "from_networkx",
    "read_edge_list",
    "read_json",
    "read_triples",
    "to_networkx",
    "write_edge_list",
    "write_json",
    "write_triples",
    "bfs_layers",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "ego_network",
    "k_hop_neighbourhood",
    "largest_component",
    "shortest_path",
]

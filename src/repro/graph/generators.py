"""Synthetic graph generators.

The paper evaluates on two real datasets that are not redistributable at their
original scale (a 151M-edge Wikidata RDF export and the 16.5M-edge SNAP Patent
citation graph).  The generators here produce scaled-down synthetic graphs with
the same *structural character*, which is what the evaluation's qualitative
claims depend on:

* :func:`wikidata_like` — an RDF-style graph: entity nodes connected to many
  literal/attribute nodes through labelled properties plus a sparse
  entity-to-entity link structure.  Like the real export it has slightly more
  edges than nodes (average degree ~2) and a large number of degree-1 literal
  nodes.
* :func:`patent_like` — a citation graph: power-law style in-degrees and an
  average total degree around 8-9 (the real Patent graph has 16.5M edges over
  3.8M nodes, i.e. average degree ~8.7), which is what makes Step 1
  (partitioning) relatively more expensive per node than for Wikidata.

General-purpose random graphs (Erdős–Rényi, Barabási–Albert, grid, community)
are provided for tests and ablation benchmarks.
"""

from __future__ import annotations

import random

from .model import Graph

__all__ = [
    "wikidata_like",
    "patent_like",
    "erdos_renyi",
    "barabasi_albert",
    "grid_graph",
    "community_graph",
    "star_graph",
    "path_graph",
    "complete_graph",
]

_FIRST_NAMES = [
    "Ada", "Alan", "Grace", "Edsger", "Donald", "Barbara", "John", "Christos",
    "Margaret", "Tim", "Radia", "Leslie", "Frances", "Ken", "Dennis", "Niklaus",
]
_LAST_NAMES = [
    "Lovelace", "Turing", "Hopper", "Dijkstra", "Knuth", "Liskov", "McCarthy",
    "Faloutsos", "Hamilton", "Berners-Lee", "Perlman", "Lamport", "Allen",
    "Thompson", "Ritchie", "Wirth",
]
_TOPICS = [
    "databases", "visualization", "graphs", "indexing", "networks", "semantics",
    "storage", "queries", "layout", "clustering", "ranking", "streaming",
]
_PROPERTIES = [
    "has-author", "has-title", "has-topic", "cites", "published-in", "has-year",
    "affiliated-with", "instance-of", "subclass-of", "located-in", "part-of",
    "has-label",
]


def _entity_label(rng: random.Random, index: int) -> str:
    """Return a readable label for an entity node."""
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    topic = rng.choice(_TOPICS)
    return f"{first} {last} on {topic} #{index}"


def wikidata_like(
    num_entities: int = 2000,
    literals_per_entity: float = 1.5,
    links_per_entity: float = 0.6,
    seed: int = 7,
    name: str = "wikidata-like",
) -> Graph:
    """Generate an RDF-style graph resembling a Wikidata export.

    Parameters
    ----------
    num_entities:
        Number of entity (resource) nodes.  Literal nodes are added on top of
        these, so the total node count is roughly
        ``num_entities * (1 + literals_per_entity)``.
    literals_per_entity:
        Expected number of literal/attribute nodes attached to each entity
        (degree-1 leaves, as RDF literals are in the real dataset).
    links_per_entity:
        Expected number of entity-to-entity property edges per entity.
    seed:
        Random seed; the same seed always produces the same graph.
    """
    rng = random.Random(seed)
    graph = Graph(directed=True, name=name)
    for entity_id in range(num_entities):
        graph.add_node(
            entity_id,
            label=_entity_label(rng, entity_id),
            node_type="entity",
        )

    next_id = num_entities
    # Literal leaves: each entity gets a Poisson-ish number of literal children.
    for entity_id in range(num_entities):
        count = _poisson(rng, literals_per_entity)
        for _ in range(count):
            literal_id = next_id
            next_id += 1
            value = rng.choice(_TOPICS) + "-" + str(rng.randint(1900, 2016))
            graph.add_node(literal_id, label=value, node_type="literal")
            graph.add_edge(
                entity_id,
                literal_id,
                label=rng.choice(["has-label", "has-year", "has-title"]),
                edge_type="attribute",
            )

    # Entity-to-entity links with mild preferential attachment so a few hub
    # entities emerge (as in the real knowledge graph).
    hub_pool: list[int] = list(range(min(num_entities, 50)))
    for entity_id in range(num_entities):
        count = _poisson(rng, links_per_entity)
        for _ in range(count):
            if rng.random() < 0.3 and hub_pool:
                target = rng.choice(hub_pool)
            else:
                target = rng.randrange(num_entities)
            if target == entity_id:
                continue
            graph.add_edge(
                entity_id,
                target,
                label=rng.choice(_PROPERTIES),
                edge_type="relation",
            )
    return graph


def patent_like(
    num_patents: int = 3000,
    citations_per_patent: float = 4.3,
    seed: int = 11,
    name: str = "patent-like",
) -> Graph:
    """Generate a citation graph resembling the SNAP Patent dataset.

    Patents are created in temporal order and cite earlier patents with a
    preferential-attachment bias, which yields the heavy-tailed in-degree
    distribution and the relatively high average degree of the real dataset
    (~8.7 total degree, i.e. ~4.3 citations made per patent).
    """
    rng = random.Random(seed)
    graph = Graph(directed=True, name=name)
    citation_targets: list[int] = []
    for patent_id in range(num_patents):
        year = 1963 + (patent_id * 36) // max(1, num_patents)
        graph.add_node(
            patent_id,
            label=f"US patent {patent_id:07d} ({year})",
            node_type="patent",
            properties={"year": year},
        )
        if patent_id == 0:
            continue
        count = _poisson(rng, citations_per_patent)
        for _ in range(count):
            if citation_targets and rng.random() < 0.65:
                target = rng.choice(citation_targets)
            else:
                target = rng.randrange(patent_id)
            if target == patent_id:
                continue
            graph.add_edge(patent_id, target, label="cites", edge_type="citation")
            citation_targets.append(target)
        citation_targets.append(patent_id)
    return graph


def erdos_renyi(
    num_nodes: int, edge_probability: float, seed: int = 0, directed: bool = False,
    name: str = "erdos-renyi",
) -> Graph:
    """Generate a G(n, p) random graph."""
    rng = random.Random(seed)
    graph = Graph(directed=directed, name=name)
    for node_id in range(num_nodes):
        graph.add_node(node_id, label=f"n{node_id}")
    for source in range(num_nodes):
        start = 0 if directed else source + 1
        for target in range(start, num_nodes):
            if source == target:
                continue
            if rng.random() < edge_probability:
                graph.add_edge(source, target, label="link")
    return graph


def barabasi_albert(
    num_nodes: int, edges_per_node: int = 2, seed: int = 0, name: str = "barabasi-albert"
) -> Graph:
    """Generate a preferential-attachment (scale-free) graph."""
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be >= 1")
    rng = random.Random(seed)
    graph = Graph(directed=False, name=name)
    initial = max(edges_per_node, 2)
    for node_id in range(min(initial, num_nodes)):
        graph.add_node(node_id, label=f"n{node_id}")
    repeated: list[int] = list(range(min(initial, num_nodes)))
    for source in range(initial, num_nodes):
        graph.add_node(source, label=f"n{source}")
        targets: set[int] = set()
        while len(targets) < edges_per_node and len(targets) < source:
            if repeated and rng.random() < 0.9:
                candidate = rng.choice(repeated)
            else:
                candidate = rng.randrange(source)
            if candidate != source:
                targets.add(candidate)
        for target in targets:
            graph.add_edge(source, target, label="link")
            repeated.append(target)
            repeated.append(source)
    return graph


def grid_graph(rows: int, cols: int, name: str = "grid") -> Graph:
    """Generate a 2D lattice graph (useful for layout/organizer tests)."""
    graph = Graph(directed=False, name=name)
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            graph.add_node(node_id, label=f"({row},{col})")
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            if col + 1 < cols:
                graph.add_edge(node_id, node_id + 1, label="right")
            if row + 1 < rows:
                graph.add_edge(node_id, node_id + cols, label="down")
    return graph


def community_graph(
    num_communities: int = 4,
    community_size: int = 30,
    intra_probability: float = 0.25,
    inter_edges: int = 5,
    seed: int = 3,
    name: str = "communities",
) -> Graph:
    """Generate a planted-partition graph with dense communities and few bridges.

    This is the structure the paper's partitioning step is designed to exploit:
    a k-way cut that keeps communities intact has very few crossing edges.
    """
    rng = random.Random(seed)
    graph = Graph(directed=False, name=name)
    for community in range(num_communities):
        base = community * community_size
        for offset in range(community_size):
            graph.add_node(
                base + offset,
                label=f"c{community}-n{offset}",
                node_type=f"community-{community}",
            )
        for i in range(community_size):
            for j in range(i + 1, community_size):
                if rng.random() < intra_probability:
                    graph.add_edge(base + i, base + j, label="intra")
    for _ in range(inter_edges * num_communities):
        first_community = rng.randrange(num_communities)
        second_community = rng.randrange(num_communities)
        if first_community == second_community:
            continue
        source = first_community * community_size + rng.randrange(community_size)
        target = second_community * community_size + rng.randrange(community_size)
        graph.add_edge(source, target, label="inter")
    return graph


def star_graph(num_leaves: int, name: str = "star") -> Graph:
    """Generate a star: node 0 connected to ``num_leaves`` leaves."""
    graph = Graph(directed=False, name=name)
    graph.add_node(0, label="center")
    for leaf in range(1, num_leaves + 1):
        graph.add_node(leaf, label=f"leaf{leaf}")
        graph.add_edge(0, leaf, label="spoke")
    return graph


def path_graph(num_nodes: int, name: str = "path") -> Graph:
    """Generate a simple path ``0 - 1 - ... - (n-1)``."""
    graph = Graph(directed=False, name=name)
    for node_id in range(num_nodes):
        graph.add_node(node_id, label=f"p{node_id}")
    for node_id in range(num_nodes - 1):
        graph.add_edge(node_id, node_id + 1, label="next")
    return graph


def complete_graph(num_nodes: int, name: str = "complete") -> Graph:
    """Generate a complete (undirected) graph on ``num_nodes`` nodes."""
    graph = Graph(directed=False, name=name)
    for node_id in range(num_nodes):
        graph.add_node(node_id, label=f"k{node_id}")
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            graph.add_edge(i, j, label="link")
    return graph


def _poisson(rng: random.Random, mean: float) -> int:
    """Sample from a Poisson distribution using Knuth's method.

    ``mean`` values used here are small (< 10) so the simple method is fine.
    """
    if mean <= 0:
        return 0
    limit = pow(2.718281828459045, -mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count

"""Property-graph data model.

The paper stores graphs as triples ``(node1, edge, node2)`` where both nodes and
edges carry labels, and edges may be directed (node1 is always the source).  The
in-memory model here is what the preprocessing pipeline consumes: a mutable
property graph with integer node ids, per-node and per-edge labels and types, and
adjacency structures tuned for the traversals the partitioner and the abstraction
builders need.

The model intentionally does not depend on :mod:`networkx`; conversion helpers are
provided in :mod:`repro.graph.io` for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import DuplicateNodeError, EdgeNotFoundError, NodeNotFoundError

__all__ = ["Node", "Edge", "Graph"]


@dataclass
class Node:
    """A graph node.

    Attributes
    ----------
    node_id:
        Unique integer identifier (the ``Node ID`` columns of the storage scheme).
    label:
        Human-readable label used by the full-text keyword index.
    node_type:
        Optional type tag (e.g. ``"article"``, ``"author"``, ``"literal"``); the
        demo's Filter panel hides nodes by type.
    properties:
        Arbitrary metadata shown in the Information panel.
    """

    node_id: int
    label: str = ""
    node_type: str = ""
    properties: dict[str, object] = field(default_factory=dict)

    def copy(self) -> "Node":
        """Return a deep-enough copy (properties dict is copied)."""
        return Node(self.node_id, self.label, self.node_type, dict(self.properties))


@dataclass
class Edge:
    """A graph edge from ``source`` to ``target``.

    For undirected graphs the (source, target) order is the insertion order and
    both orientations are considered equivalent by :class:`Graph`.
    """

    source: int
    target: int
    label: str = ""
    edge_type: str = ""
    weight: float = 1.0
    properties: dict[str, object] = field(default_factory=dict)

    def key(self) -> tuple[int, int]:
        """Return the ``(source, target)`` pair identifying this edge."""
        return (self.source, self.target)

    def other(self, node_id: int) -> int:
        """Return the endpoint that is not ``node_id``.

        For self-loops the same id is returned.
        """
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise ValueError(f"node {node_id} is not an endpoint of edge {self.key()}")

    def copy(self) -> "Edge":
        """Return a deep-enough copy (properties dict is copied)."""
        return Edge(
            self.source,
            self.target,
            self.label,
            self.edge_type,
            self.weight,
            dict(self.properties),
        )


class Graph:
    """A mutable property graph with integer node ids.

    Parallel edges are not supported: at most one edge exists per ordered
    ``(source, target)`` pair (and per unordered pair when the graph is
    undirected).  Self-loops are allowed.

    Parameters
    ----------
    directed:
        Whether edges are directed.  The paper's storage scheme encodes the
        direction inside the edge geometry; the model keeps it explicit.
    name:
        Optional dataset name (e.g. ``"wikidata"``), surfaced in statistics.
    """

    def __init__(self, directed: bool = True, name: str = "") -> None:
        self.directed = directed
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._edges: dict[tuple[int, int], Edge] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ nodes

    def add_node(
        self,
        node_id: int,
        label: str = "",
        node_type: str = "",
        properties: dict[str, object] | None = None,
    ) -> Node:
        """Add a node and return it.

        Raises
        ------
        DuplicateNodeError
            If the node id already exists.
        """
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        node = Node(node_id, label, node_type, dict(properties or {}))
        self._nodes[node_id] = node
        self._out[node_id] = set()
        self._in[node_id] = set()
        return node

    def ensure_node(self, node_id: int, label: str = "", node_type: str = "") -> Node:
        """Return the node, creating it if it does not exist yet."""
        node = self._nodes.get(node_id)
        if node is None:
            return self.add_node(node_id, label, node_type)
        return node

    def node(self, node_id: int) -> Node:
        """Return the node with ``node_id``.

        Raises
        ------
        NodeNotFoundError
            If no such node exists.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def has_node(self, node_id: int) -> bool:
        """Return ``True`` if the node exists."""
        return node_id in self._nodes

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every edge incident to it."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        for neighbour in list(self._out[node_id]):
            self.remove_edge(node_id, neighbour)
        for neighbour in list(self._in[node_id]):
            if self.has_edge(neighbour, node_id):
                self.remove_edge(neighbour, node_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(self._nodes.keys())

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    # ------------------------------------------------------------------ edges

    def _edge_key(self, source: int, target: int) -> tuple[int, int] | None:
        """Return the stored key for the (source, target) edge, or ``None``."""
        if (source, target) in self._edges:
            return (source, target)
        if not self.directed and (target, source) in self._edges:
            return (target, source)
        return None

    def add_edge(
        self,
        source: int,
        target: int,
        label: str = "",
        edge_type: str = "",
        weight: float = 1.0,
        properties: dict[str, object] | None = None,
    ) -> Edge:
        """Add an edge, creating missing endpoints with empty labels.

        If the edge already exists its attributes are overwritten (last writer
        wins), matching the semantics of reloading a triple.
        """
        self.ensure_node(source)
        self.ensure_node(target)
        key = self._edge_key(source, target)
        if key is not None:
            existing = self._edges[key]
            existing.label = label
            existing.edge_type = edge_type
            existing.weight = weight
            if properties:
                existing.properties.update(properties)
            return existing
        edge = Edge(source, target, label, edge_type, weight, dict(properties or {}))
        self._edges[(source, target)] = edge
        self._out[source].add(target)
        self._in[target].add(source)
        if not self.directed:
            self._out[target].add(source)
            self._in[source].add(target)
        return edge

    def edge(self, source: int, target: int) -> Edge:
        """Return the edge from ``source`` to ``target``.

        For undirected graphs either orientation matches.
        """
        key = self._edge_key(source, target)
        if key is None:
            raise EdgeNotFoundError(source, target)
        return self._edges[key]

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` if the edge exists (either orientation if undirected)."""
        return self._edge_key(source, target) is not None

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the edge from ``source`` to ``target``."""
        key = self._edge_key(source, target)
        if key is None:
            raise EdgeNotFoundError(source, target)
        stored_source, stored_target = key
        del self._edges[key]
        self._out[stored_source].discard(stored_target)
        self._in[stored_target].discard(stored_source)
        if not self.directed:
            self._out[stored_target].discard(stored_source)
            self._in[stored_source].discard(stored_target)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    # -------------------------------------------------------------- adjacency

    def successors(self, node_id: int) -> set[int]:
        """Return the set of nodes reachable by one outgoing edge."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return set(self._out[node_id])

    def predecessors(self, node_id: int) -> set[int]:
        """Return the set of nodes with an edge into ``node_id``."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return set(self._in[node_id])

    def neighbors(self, node_id: int) -> set[int]:
        """Return all neighbours regardless of edge direction."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return self._out[node_id] | self._in[node_id]

    def degree(self, node_id: int) -> int:
        """Return the total degree (in + out for directed graphs)."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        if self.directed:
            return len(self._out[node_id]) + len(self._in[node_id])
        return len(self._out[node_id])

    def out_degree(self, node_id: int) -> int:
        """Return the number of outgoing edges."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return len(self._out[node_id])

    def in_degree(self, node_id: int) -> int:
        """Return the number of incoming edges."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        return len(self._in[node_id])

    def incident_edges(self, node_id: int) -> list[Edge]:
        """Return every edge that has ``node_id`` as an endpoint."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        result: list[Edge] = []
        seen: set[tuple[int, int]] = set()
        for target in self._out[node_id]:
            key = self._edge_key(node_id, target)
            if key is not None and key not in seen:
                seen.add(key)
                result.append(self._edges[key])
        for source in self._in[node_id]:
            key = self._edge_key(source, node_id)
            if key is not None and key not in seen:
                seen.add(key)
                result.append(self._edges[key])
        return result

    # ------------------------------------------------------------- operations

    def subgraph(self, node_ids: Iterable[int], name: str = "") -> "Graph":
        """Return the induced subgraph over ``node_ids`` (copies nodes/edges)."""
        keep = set(node_ids)
        sub = Graph(directed=self.directed, name=name or f"{self.name}-sub")
        for node_id in keep:
            node = self.node(node_id)
            sub.add_node(node.node_id, node.label, node.node_type, dict(node.properties))
        for edge in self._edges.values():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(
                    edge.source,
                    edge.target,
                    edge.label,
                    edge.edge_type,
                    edge.weight,
                    dict(edge.properties),
                )
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        return self.subgraph(self._nodes.keys(), name=self.name)

    def relabel(self, mapping: dict[int, int], name: str = "") -> "Graph":
        """Return a copy of the graph with node ids remapped through ``mapping``.

        Missing ids keep their original value.  Collisions created by the mapping
        merge nodes (edges are rewired accordingly).
        """
        result = Graph(directed=self.directed, name=name or self.name)
        for node in self._nodes.values():
            new_id = mapping.get(node.node_id, node.node_id)
            if not result.has_node(new_id):
                result.add_node(new_id, node.label, node.node_type, dict(node.properties))
        for edge in self._edges.values():
            new_source = mapping.get(edge.source, edge.source)
            new_target = mapping.get(edge.target, edge.target)
            if new_source == new_target:
                continue
            result.add_edge(
                new_source, new_target, edge.label, edge.edge_type, edge.weight,
                dict(edge.properties),
            )
        return result

    def edge_types(self) -> set[str]:
        """Return the set of distinct edge types."""
        return {edge.edge_type for edge in self._edges.values()}

    def node_types(self) -> set[str]:
        """Return the set of distinct node types."""
        return {node.node_type for node in self._nodes.values()}

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph(name={self.name!r}, {kind}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )

"""Named demo datasets.

The paper's demonstration outline lets attendees "select a dataset from a
number of real-world datasets (e.g., ACM, DBLP, DBpedia)" and explore the
Notre Dame web graph with PageRank/HITS abstraction.  This module provides
synthetic stand-ins for those demo datasets plus a small registry so examples,
the CLI and tests can refer to datasets by name:

* ``acm`` / ``dblp`` — a bibliographic graph with ``article``, ``author``,
  ``venue`` and ``title`` nodes connected by typed edges (``has-author``,
  ``cites``, ``published-in``, ``has-title``), the structure behind the
  "filter out has-author edges and visualise only the cite edges" and the
  "Christos Faloutsos collaborations" scenarios;
* ``webgraph`` — a Notre-Dame-like web graph with a heavy-tailed in-degree
  distribution, the dataset used for the PageRank/HITS abstraction demo;
* ``wikidata`` / ``patent`` — the evaluation datasets
  (:func:`repro.graph.generators.wikidata_like` / ``patent_like``).
"""

from __future__ import annotations

import random
from typing import Callable

from .generators import patent_like, wikidata_like
from .model import Graph

__all__ = ["acm_like", "web_graph_like", "available_datasets", "load_dataset"]

_AUTHOR_NAMES = [
    "Christos Faloutsos", "Ada Lovelace", "Alan Turing", "Grace Hopper",
    "Barbara Liskov", "Edsger Dijkstra", "Donald Knuth", "Leslie Lamport",
    "Tim Berners-Lee", "Radia Perlman", "Frances Allen", "John McCarthy",
    "Margaret Hamilton", "Ken Thompson", "Dennis Ritchie", "Niklaus Wirth",
    "Michael Stonebraker", "Jennifer Widom", "Jeffrey Ullman", "Hector Garcia-Molina",
]
_VENUES = ["ICDE", "VLDB", "SIGMOD", "EDBT", "CIKM", "KDD", "WWW", "TKDE"]
_TITLE_WORDS = [
    "scalable", "interactive", "visualization", "graphs", "indexing", "spatial",
    "queries", "databases", "exploration", "partitioning", "layouts", "streams",
]


def acm_like(
    num_articles: int = 600,
    num_authors: int = 150,
    authors_per_article: float = 2.5,
    citations_per_article: float = 3.0,
    seed: int = 13,
    name: str = "acm-like",
) -> Graph:
    """Generate a bibliographic (ACM/DBLP-style) graph.

    Node types: ``article``, ``author``, ``venue``, ``title`` (title nodes play
    the role of RDF literals).  Edge types/labels: ``has-author``, ``cites``,
    ``published-in``, ``has-title``.
    """
    rng = random.Random(seed)
    graph = Graph(directed=True, name=name)

    author_base = 0
    for index in range(num_authors):
        label = _AUTHOR_NAMES[index % len(_AUTHOR_NAMES)]
        if index >= len(_AUTHOR_NAMES):
            label = f"{label} {index // len(_AUTHOR_NAMES)}"
        graph.add_node(author_base + index, label=label, node_type="author")

    venue_base = num_authors
    for index, venue in enumerate(_VENUES):
        graph.add_node(venue_base + index, label=venue, node_type="venue")

    article_base = venue_base + len(_VENUES)
    title_base = article_base + num_articles
    next_title = title_base

    # Preferential pools so a few authors (e.g. Faloutsos) accumulate many papers
    # and a few articles accumulate many citations.
    author_pool: list[int] = list(range(num_authors))
    citation_pool: list[int] = []

    for article_index in range(num_articles):
        article_id = article_base + article_index
        year = 1995 + (article_index * 21) // max(1, num_articles)
        words = rng.sample(_TITLE_WORDS, k=3)
        title = f"{words[0].title()} {words[1]} for {words[2]} ({year})"
        graph.add_node(
            article_id, label=f"article-{article_index:05d}", node_type="article",
            properties={"year": year},
        )
        # has-title (literal-style leaf).
        graph.add_node(next_title, label=title, node_type="title")
        graph.add_edge(article_id, next_title, label="has-title", edge_type="literal")
        next_title += 1
        # published-in.
        venue_id = venue_base + rng.randrange(len(_VENUES))
        graph.add_edge(article_id, venue_id, label="published-in", edge_type="venue")
        # has-author with preferential attachment.
        count = max(1, _poisson(rng, authors_per_article))
        chosen: set[int] = set()
        while len(chosen) < min(count, num_authors):
            if author_pool and rng.random() < 0.6:
                chosen.add(rng.choice(author_pool))
            else:
                chosen.add(rng.randrange(num_authors))
        for author in chosen:
            graph.add_edge(article_id, author_base + author, label="has-author",
                           edge_type="authorship")
            author_pool.append(author)
        # cites earlier articles with preferential attachment.
        cites = _poisson(rng, citations_per_article)
        for _ in range(cites):
            if article_index == 0:
                break
            if citation_pool and rng.random() < 0.6:
                target = rng.choice(citation_pool)
            else:
                target = article_base + rng.randrange(article_index)
            if target != article_id:
                graph.add_edge(article_id, target, label="cites", edge_type="citation")
                citation_pool.append(target)
        citation_pool.append(article_id)
    return graph


def web_graph_like(
    num_pages: int = 2000,
    links_per_page: float = 4.5,
    hub_fraction: float = 0.02,
    seed: int = 17,
    name: str = "webgraph-like",
) -> Graph:
    """Generate a Notre-Dame-style web graph (heavy-tailed in-degrees).

    A small fraction of pages are "hubs" that attract most links, which is what
    makes PageRank/HITS-based abstraction layers meaningful on this dataset.
    """
    rng = random.Random(seed)
    graph = Graph(directed=True, name=name)
    num_hubs = max(1, int(num_pages * hub_fraction))
    for page in range(num_pages):
        kind = "hub" if page < num_hubs else "page"
        graph.add_node(
            page,
            label=f"www.nd.edu/{'hub' if kind == 'hub' else 'page'}/{page}",
            node_type=kind,
        )
    for page in range(num_pages):
        count = _poisson(rng, links_per_page)
        for _ in range(count):
            if rng.random() < 0.55:
                target = rng.randrange(num_hubs)
            else:
                target = rng.randrange(num_pages)
            if target != page:
                graph.add_edge(page, target, label="links-to", edge_type="hyperlink")
    return graph


#: Registry of named demo datasets: name -> factory(scale, seed) -> Graph.
_DATASETS: dict[str, Callable[[float, int], Graph]] = {
    "acm": lambda scale, seed: acm_like(
        num_articles=max(50, int(600 * scale)),
        num_authors=max(20, int(150 * scale)),
        seed=seed,
        name="acm",
    ),
    "dblp": lambda scale, seed: acm_like(
        num_articles=max(80, int(900 * scale)),
        num_authors=max(30, int(250 * scale)),
        citations_per_article=2.0,
        seed=seed,
        name="dblp",
    ),
    "webgraph": lambda scale, seed: web_graph_like(
        num_pages=max(100, int(2000 * scale)), seed=seed, name="webgraph"
    ),
    "wikidata": lambda scale, seed: wikidata_like(
        num_entities=max(100, int(2000 * scale)), seed=seed, name="wikidata"
    ),
    "patent": lambda scale, seed: patent_like(
        num_patents=max(100, int(3000 * scale)), seed=seed, name="patent"
    ),
}


def available_datasets() -> list[str]:
    """Return the names of the registered demo datasets."""
    return sorted(_DATASETS)


def load_dataset(name: str, scale: float = 1.0, seed: int = 42) -> Graph:
    """Instantiate a registered demo dataset by name.

    Raises ``ValueError`` for unknown names so callers (e.g. the CLI) can show
    the available choices.
    """
    factory = _DATASETS.get(name.lower())
    if factory is None:
        raise ValueError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if scale <= 0:
        raise ValueError("scale must be positive")
    return factory(scale, seed)


def _poisson(rng: random.Random, mean: float) -> int:
    if mean <= 0:
        return 0
    limit = pow(2.718281828459045, -mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count

"""Configuration objects shared across the graphVizdb reproduction.

The configuration mirrors the knobs the paper exposes:

* how many partitions to create during preprocessing (Step 1), which the paper
  describes as "proportional to the total graph size and the available memory";
* which layout algorithm to run per partition (Step 2);
* how many abstraction layers to build and with which criterion (Step 4);
* client-side viewport parameters (canvas size, zoom behaviour) used by the
  online operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError

#: Default pixel density used to map between "plane units" and screen pixels.
#: The paper expresses window sizes in pixels (e.g. 2000x2000); internally the
#: layout plane uses abstract units, and one unit corresponds to one pixel at
#: zoom level 1.0.
DEFAULT_PIXELS_PER_UNIT = 1.0

#: Default number of abstraction layers (the paper indexes 5 layers per dataset).
DEFAULT_NUM_LAYERS = 5


@dataclass(frozen=True)
class PartitionConfig:
    """Configuration for preprocessing Step 1 (k-way partitioning).

    Attributes
    ----------
    num_partitions:
        Number of partitions ``k``.  If zero, the value is derived from
        ``max_partition_nodes`` (the memory-budget-driven sizing the paper
        describes).
    max_partition_nodes:
        Upper bound on nodes per partition used to derive ``k`` when
        ``num_partitions`` is 0.
    balance_factor:
        Allowed imbalance; 1.05 means the largest partition may hold at most
        5% more than the ideal share.
    method:
        Partitioner name: ``"multilevel"`` (Metis-like, default), ``"bfs"``,
        ``"random"`` or ``"hash"``.
    seed:
        Random seed for reproducible partitionings.
    """

    num_partitions: int = 0
    max_partition_nodes: int = 2000
    balance_factor: float = 1.05
    method: str = "multilevel"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_partitions < 0:
            raise ConfigurationError("num_partitions must be >= 0")
        if self.max_partition_nodes <= 0:
            raise ConfigurationError("max_partition_nodes must be positive")
        if self.balance_factor < 1.0:
            raise ConfigurationError("balance_factor must be >= 1.0")

    def resolve_k(self, num_nodes: int) -> int:
        """Return the effective number of partitions for a graph of ``num_nodes``."""
        if self.num_partitions > 0:
            return max(1, min(self.num_partitions, num_nodes))
        if num_nodes <= 0:
            return 1
        k = (num_nodes + self.max_partition_nodes - 1) // self.max_partition_nodes
        return max(1, min(k, num_nodes))


@dataclass(frozen=True)
class LayoutConfig:
    """Configuration for preprocessing Step 2 (per-partition layout).

    Attributes
    ----------
    algorithm:
        Name of a registered layout algorithm (see :mod:`repro.layout.registry`).
    iterations:
        Iteration budget for iterative algorithms (force-directed).
    area_per_node:
        Target plane area allocated per node; controls how spread out each
        partition's drawing is.
    padding:
        Padding (plane units) added around each partition's bounding box before
        the organizer places it on the global plane.
    seed:
        Random seed for layouts with random initialisation.
    """

    algorithm: str = "force_directed"
    iterations: int = 50
    area_per_node: float = 10_000.0
    padding: float = 40.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.area_per_node <= 0:
            raise ConfigurationError("area_per_node must be positive")
        if self.padding < 0:
            raise ConfigurationError("padding must be >= 0")


@dataclass(frozen=True)
class AbstractionConfig:
    """Configuration for preprocessing Step 4 (abstraction layers).

    Attributes
    ----------
    num_layers:
        Number of abstraction layers *above* layer 0 to build.  The paper's
        evaluation indexes 5 layers per dataset (layer 0 plus 4 abstractions),
        hence the default of 4.
    criterion:
        Abstraction criterion: ``"degree"``, ``"pagerank"``, ``"hits"``
        (filter-based, as in the demo's Layer Panel) or ``"merge"``
        (summarisation by clustering).
    keep_fraction:
        Fraction of nodes retained at each successive layer for filter-based
        criteria (layer i keeps ``keep_fraction`` of layer i-1's nodes).
    seed:
        Random seed for criteria with randomised tie-breaking.
    """

    num_layers: int = 4
    criterion: str = "degree"
    keep_fraction: float = 0.5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_layers < 0:
            raise ConfigurationError("num_layers must be >= 0")
        if not 0.0 < self.keep_fraction < 1.0:
            raise ConfigurationError("keep_fraction must be in (0, 1)")


@dataclass(frozen=True)
class StorageConfig:
    """Configuration for preprocessing Step 5 (store & index).

    Attributes
    ----------
    backend:
        ``"memory"`` (pure-Python tables), ``"file"`` (binary row files) or
        ``"sqlite"`` (standard-library SQLite database).
    index_kind:
        Spatial index used by bulk-loaded layer tables: ``"packed"`` (default;
        the immutable flat-array :class:`~repro.spatial.packed_rtree.PackedRTree`,
        built once after preprocessing since online tables are read-mostly) or
        ``"rtree"`` (the dynamic pointer-based R-tree).  Tables transparently
        fall back to the dynamic tree when the Edit panel mutates geometry.
    rtree_max_entries:
        Maximum fan-out of R-tree nodes.
    rtree_bulk_load:
        Whether to bulk load the R-tree with the STR algorithm (faster and
        better-packed than repeated inserts).
    btree_order:
        Fan-out of the B+-tree on node ids.
    path:
        Directory (file backend) or database file (sqlite backend); ``None``
        selects a temporary location.
    index_pages:
        Persist the packed spatial index as versioned BLOB pages when saving
        to SQLite, and restore from those pages (instead of re-packing from
        rows) when loading — the zero-rebuild cold-start path.  Opt out with
        ``False`` to always rebuild indexes from rows on load.
    lazy_secondary_indexes:
        Build the node-id B+-trees and the label tries on first use instead of
        at load time, so window-query-only workloads never pay for them.
        ``False`` restores the eager build-at-load behaviour.
    secondary_index_pages:
        Persist *built* secondary indexes (node-id B+-trees, label tries) as
        versioned BLOB pages when saving to SQLite, and restore from those
        pages instead of the lazy build-from-store scan on the next open —
        so a keyword-heavy server that has materialised its tries once never
        re-derives them after a restart.  Indexes that were never built
        (pure window workloads) are neither persisted nor restored.
    cache_capacity:
        Per-table LRU bound on each of the row-level caches (decoded segments,
        flat endpoint coordinates, JSON fragments), in rows.  ``0`` means
        unbounded.
    """

    backend: str = "memory"
    index_kind: str = "packed"
    rtree_max_entries: int = 32
    rtree_bulk_load: bool = True
    btree_order: int = 64
    path: str | None = None
    index_pages: bool = True
    lazy_secondary_indexes: bool = True
    secondary_index_pages: bool = True
    cache_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.backend not in {"memory", "file", "sqlite"}:
            raise ConfigurationError(
                f"unknown storage backend {self.backend!r}; expected memory, file or sqlite"
            )
        if self.index_kind not in {"rtree", "packed"}:
            raise ConfigurationError(
                f"unknown index kind {self.index_kind!r}; expected rtree or packed"
            )
        if self.rtree_max_entries < 4:
            raise ConfigurationError("rtree_max_entries must be >= 4")
        if self.btree_order < 3:
            raise ConfigurationError("btree_order must be >= 3")
        if self.cache_capacity < 0:
            raise ConfigurationError("cache_capacity must be >= 0 (0 = unbounded)")


@dataclass(frozen=True)
class ClientConfig:
    """Client-side parameters (canvas size, zoom and streaming behaviour).

    Attributes
    ----------
    viewport_width / viewport_height:
        Size of the client viewport in pixels; used by focus-on-node and by the
        interactive navigation session.
    chunk_size:
        Number of graph elements per streamed chunk (the paper streams the
        window contents to the client "in small pieces").
    min_zoom / max_zoom:
        Zoom bounds; zooming out multiplies the server-side window size, as
        described for the multi-level exploration operation.
    """

    viewport_width: int = 1280
    viewport_height: int = 800
    chunk_size: int = 200
    min_zoom: float = 0.1
    max_zoom: float = 8.0

    def __post_init__(self) -> None:
        if self.viewport_width <= 0 or self.viewport_height <= 0:
            raise ConfigurationError("viewport dimensions must be positive")
        if self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if not 0 < self.min_zoom <= self.max_zoom:
            raise ConfigurationError("zoom bounds must satisfy 0 < min_zoom <= max_zoom")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the concurrent serving subsystem (:mod:`repro.service`).

    Attributes
    ----------
    max_workers:
        Size of the thread pool that executes blocking query work behind the
        asyncio front-end.
    max_queue_depth:
        Per-dataset admission limit: when this many requests are already
        admitted (queued or executing) for one dataset, further requests are
        rejected immediately with
        :class:`~repro.errors.ServiceOverloadedError` instead of growing the
        queue without bound (explicit backpressure).
    coalesce_window_seconds:
        How long the window-query coalescer holds the first request of a batch
        open for more concurrent requests on the same (dataset, layer) before
        dispatching.  ``0`` dispatches on the next event-loop tick (requests
        arriving in the same tick still batch).
    coalesce_max_batch:
        Dispatch a batch as soon as it reaches this many requests, without
        waiting out the coalescing window.  ``1`` disables coalescing
        entirely: every window query dispatches individually.
    pool_capacity:
        Maximum number of SQLite-backed datasets the pool keeps open at once;
        opening one more evicts the least recently used.
    pool_idle_seconds:
        A pooled dataset unused for this long is evicted by the maintenance
        scheduler (``0`` disables idle eviction).
    repack_edit_threshold:
        Number of edits to a layer table after which the maintenance
        scheduler considers a background ``repack()``.
    repack_quiescence_seconds:
        How long a table's writes must have been quiet before a background
        repack may run (repacking mid-edit-burst would be wasted work).
    maintenance_interval_seconds:
        Poll interval of the background maintenance thread.
    session_idle_seconds:
        Exploration sessions with no command for this long are expired by the
        maintenance scheduler — clients that never call ``close_session``
        (e.g. browsers that just disconnect) cannot grow server memory
        without bound.  ``0`` disables expiry.
    pool_max_resident_bytes:
        Byte budget for the dataset pool: when the estimated resident size of
        the open datasets (rows + index pages) exceeds it, least recently used
        entries are evicted even if ``pool_capacity`` is not reached.  ``0``
        disables byte-budget eviction (count/idleness still apply).
    http_keepalive_seconds:
        How long the HTTP endpoint keeps an idle client connection open for
        further requests before closing it.  ``0`` restores the PR 3
        connection-per-request behaviour (``Connection: close`` after every
        response).
    http_request_timeout_seconds:
        Per-request wall-clock budget on the HTTP endpoint; a handler that
        exceeds it is abandoned and the client receives 504.  ``0`` disables
        the timeout.
    """

    max_workers: int = 4
    max_queue_depth: int = 64
    coalesce_window_seconds: float = 0.002
    coalesce_max_batch: int = 16
    pool_capacity: int = 4
    pool_idle_seconds: float = 300.0
    repack_edit_threshold: int = 64
    repack_quiescence_seconds: float = 0.25
    maintenance_interval_seconds: float = 0.05
    session_idle_seconds: float = 3600.0
    pool_max_resident_bytes: int = 0
    http_keepalive_seconds: float = 30.0
    http_request_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        if self.max_queue_depth <= 0:
            raise ConfigurationError("max_queue_depth must be positive")
        if self.coalesce_window_seconds < 0:
            raise ConfigurationError("coalesce_window_seconds must be >= 0")
        if self.coalesce_max_batch <= 0:
            raise ConfigurationError("coalesce_max_batch must be positive")
        if self.pool_capacity <= 0:
            raise ConfigurationError("pool_capacity must be positive")
        if self.pool_idle_seconds < 0:
            raise ConfigurationError("pool_idle_seconds must be >= 0 (0 = never)")
        if self.repack_edit_threshold <= 0:
            raise ConfigurationError("repack_edit_threshold must be positive")
        if self.repack_quiescence_seconds < 0:
            raise ConfigurationError("repack_quiescence_seconds must be >= 0")
        if self.maintenance_interval_seconds <= 0:
            raise ConfigurationError("maintenance_interval_seconds must be positive")
        if self.session_idle_seconds < 0:
            raise ConfigurationError("session_idle_seconds must be >= 0 (0 = never)")
        if self.pool_max_resident_bytes < 0:
            raise ConfigurationError("pool_max_resident_bytes must be >= 0 (0 = off)")
        if self.http_keepalive_seconds < 0:
            raise ConfigurationError("http_keepalive_seconds must be >= 0 (0 = close)")
        if self.http_request_timeout_seconds < 0:
            raise ConfigurationError("http_request_timeout_seconds must be >= 0 (0 = none)")


@dataclass(frozen=True)
class WriteConfig:
    """Configuration of the durable write subsystem (:mod:`repro.writes`).

    Attributes
    ----------
    journal_enabled:
        Write every edit to a per-dataset write-ahead journal *before*
        applying it, and replay un-checkpointed journal records when the
        dataset is next opened from SQLite.  ``False`` applies edits to the
        in-memory tables only — a crash then loses every edit since the last
        explicit save (the pre-PR 5 behaviour).
    journal_fsync:
        Durability policy for journal appends: ``"always"`` fsyncs after
        every record (an acknowledged edit survives power loss),
        ``"batch"`` fsyncs once per ``journal_fsync_batch`` records (an
        acknowledged edit survives a process crash; power loss may lose the
        last partial batch), ``"never"`` leaves flushing to the OS.
    journal_fsync_batch:
        Records per fsync under the ``"batch"`` policy.
    checkpoint_every_records:
        After this many journalled edits, the write coordinator checkpoints
        the dataset — an incremental ``save_to_sqlite`` followed by a journal
        truncation — in the background.  ``0`` disables automatic
        checkpointing (the journal grows until an explicit checkpoint).
    max_record_bytes:
        Upper bound on one journal record's payload; a larger edit is
        rejected before it is written (defence against a malformed client
        request growing the journal without bound).
    """

    journal_enabled: bool = True
    journal_fsync: str = "batch"
    journal_fsync_batch: int = 16
    checkpoint_every_records: int = 512
    max_record_bytes: int = 1024 * 1024

    def __post_init__(self) -> None:
        if self.journal_fsync not in {"always", "batch", "never"}:
            raise ConfigurationError(
                f"unknown journal_fsync policy {self.journal_fsync!r}; "
                "expected always, batch or never"
            )
        if self.journal_fsync_batch <= 0:
            raise ConfigurationError("journal_fsync_batch must be positive")
        if self.checkpoint_every_records < 0:
            raise ConfigurationError(
                "checkpoint_every_records must be >= 0 (0 = manual only)"
            )
        if self.max_record_bytes <= 0:
            raise ConfigurationError("max_record_bytes must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the multi-process cluster subsystem (:mod:`repro.cluster`).

    Attributes
    ----------
    num_workers:
        Worker processes behind the router.  ``0`` means no cluster: the
        caller should serve from a single in-process
        :class:`~repro.service.frontend.GraphVizDBService` instead.
    health_interval_seconds:
        Period of the router's health-probe loop (``GET /health`` on every
        worker); also the cadence at which per-dataset edit counters are
        refreshed for window-cache invalidation.
    health_timeout_seconds:
        Per-probe timeout; a probe that exceeds it counts as one failure.
    max_health_failures:
        Consecutive failed probes after which a worker is declared dead and
        restarted (a dead OS process is declared dead immediately).
    restart_backoff_seconds:
        Pause before respawning a crashed worker, so a worker that dies on
        arrival cannot hot-loop the supervisor.
    proxy_timeout_seconds:
        Per-request budget for one proxied round trip to a worker; an
        exceeded budget fails the worker connection and surfaces 503 +
        ``Retry-After`` to the client.  Keep it *above* the workers'
        ``ServiceConfig.http_request_timeout_seconds`` so a merely slow
        query surfaces as the worker's own 504 instead of tripping
        failover and restarting a healthy worker.
    drain_timeout_seconds:
        On shutdown, how long the router waits for in-flight proxied requests
        to finish before terminating workers anyway.
    cache_capacity:
        Maximum entries in the router's cross-request window-result cache
        (``0`` disables the cache).
    cache_max_bytes:
        Byte budget for cached window payloads; least recently used entries
        are evicted beyond it.  When the service configuration carries a
        dataset-pool byte budget (``ServiceConfig.pool_max_resident_bytes``),
        the router derives the effective cache budget as
        ``cache_memory_fraction`` of it instead — cache and pool then share
        one memory story rather than two unrelated static knobs.
    cache_memory_fraction:
        Fraction of ``ServiceConfig.pool_max_resident_bytes`` granted to the
        router's window-result cache when that pool budget is set (the
        adaptive sizing above); ignored when the pool budget is ``0``.
    worker_threads:
        ``max_workers`` (thread-pool size) handed to each worker process's
        service configuration.
    restart_backoff_jitter:
        Random extension of the restart backoff, as a fraction of
        ``restart_backoff_seconds`` (``0.5`` sleeps between 1.0x and 1.5x the
        base) — a fleet whose workers all died together must not respawn in
        lockstep.
    retry_budget:
        Additional proxy attempts after the first one fails with a worker
        error.  Applies to GETs and — now that edits carry idempotency keys —
        to ``POST /edit/*`` as well.  ``0`` disables failover retries.
    retry_backoff_base_seconds / retry_backoff_max_seconds / retry_backoff_jitter:
        Exponential backoff between proxy retry attempts: attempt ``n`` waits
        ``min(max, base * 2**(n-1))`` extended by a random fraction up to
        ``retry_backoff_jitter`` — decorrelating a thundering herd of
        retries.  The wait is skipped when it would cross the request's
        deadline.
    circuit_breaker_failures:
        Consecutive :class:`~repro.errors.WorkerUnavailableError`\\ s (proxy
        or probe connection failures) after which a worker's circuit opens:
        it leaves the routing ring until a health probe succeeds again (the
        half-open close).  ``0`` disables the breaker.
    degraded_stale_reads:
        When a dataset has no healthy owner, serve ``/window`` requests from
        the router's stale-response archive (the last good response the
        window cache held before invalidation or eviction) with an explicit
        ``X-GVDB-Stale: 1`` header, instead of an immediate 503.  The paper's
        interactive panning survives a full owner outage with stale tiles
        rather than a frozen viewport.
    degraded_stale_entries:
        Capacity of the stale-response archive (``0`` disables archiving).
    degraded_stale_max_bytes:
        Byte budget over the archived response payloads.  Window payloads
        vary by orders of magnitude with zoom level, so an entry count alone
        cannot bound the archive's memory; the byte budget evicts oldest
        entries beyond it (``0`` disables the byte bound).
    health_interval_jitter:
        Random extension of each health-probe sleep, as a fraction of
        ``health_interval_seconds`` — N routers (or one router restarted in
        lockstep with its fleet) must not probe every worker on the same
        tick forever.
    replicas_per_dataset:
        Journal-streaming read replicas per dataset: the next
        ``replicas_per_dataset`` workers in the dataset's rendezvous ranking
        subscribe to the owner's journal-tail feed and keep a warm,
        near-current copy.  ``0`` disables replication (owner-only serving,
        the pre-PR 7 behaviour).
    replica_max_lag_records:
        Bounded-staleness contract: a replica whose applied watermark trails
        the owner's journal head by more than this many records is not
        eligible for reads (the router falls through to the owner, or to the
        degraded stale archive).  Clients may tighten the bound per request
        with the ``X-GVDB-Max-Staleness`` header.
    replication_poll_seconds:
        Base interval between a replica's journal-tail polls when the feed
        is idle (a poll that returned records immediately polls again).
    replication_poll_jitter:
        Random extension of each idle poll sleep, as a fraction of
        ``replication_poll_seconds`` — replicas of many datasets must not
        thunder-herd their owners on the same tick.
    fault_plan:
        JSON-encoded :class:`~repro.faults.FaultPlan` installed in every
        worker process at startup (chaos testing); empty string disables.
    """

    num_workers: int = 0
    health_interval_seconds: float = 0.25
    health_timeout_seconds: float = 2.0
    max_health_failures: int = 3
    restart_backoff_seconds: float = 0.05
    proxy_timeout_seconds: float = 40.0
    drain_timeout_seconds: float = 5.0
    cache_capacity: int = 1024
    cache_max_bytes: int = 64 * 1024 * 1024
    cache_memory_fraction: float = 0.25
    worker_threads: int = 4
    restart_backoff_jitter: float = 0.5
    retry_budget: int = 2
    retry_backoff_base_seconds: float = 0.02
    retry_backoff_max_seconds: float = 0.5
    retry_backoff_jitter: float = 0.5
    circuit_breaker_failures: int = 5
    degraded_stale_reads: bool = True
    degraded_stale_entries: int = 256
    degraded_stale_max_bytes: int = 16 * 1024 * 1024
    health_interval_jitter: float = 0.2
    replicas_per_dataset: int = 1
    replica_max_lag_records: int = 64
    replication_poll_seconds: float = 0.05
    replication_poll_jitter: float = 0.5
    fault_plan: str = ""

    def effective_cache_max_bytes(self, pool_max_resident_bytes: int) -> int:
        """The window-cache byte budget under the shared-memory-budget rule."""
        if pool_max_resident_bytes > 0:
            return max(1, int(pool_max_resident_bytes * self.cache_memory_fraction))
        return self.cache_max_bytes

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ConfigurationError("num_workers must be >= 0 (0 = no cluster)")
        if self.health_interval_seconds <= 0:
            raise ConfigurationError("health_interval_seconds must be positive")
        if self.health_timeout_seconds <= 0:
            raise ConfigurationError("health_timeout_seconds must be positive")
        if self.max_health_failures <= 0:
            raise ConfigurationError("max_health_failures must be positive")
        if self.restart_backoff_seconds < 0:
            raise ConfigurationError("restart_backoff_seconds must be >= 0")
        if self.proxy_timeout_seconds <= 0:
            raise ConfigurationError("proxy_timeout_seconds must be positive")
        if self.drain_timeout_seconds < 0:
            raise ConfigurationError("drain_timeout_seconds must be >= 0")
        if self.cache_capacity < 0:
            raise ConfigurationError("cache_capacity must be >= 0 (0 = off)")
        if self.cache_max_bytes < 0:
            raise ConfigurationError("cache_max_bytes must be >= 0")
        if not 0.0 < self.cache_memory_fraction <= 1.0:
            raise ConfigurationError("cache_memory_fraction must be in (0, 1]")
        if self.worker_threads <= 0:
            raise ConfigurationError("worker_threads must be positive")
        if self.restart_backoff_jitter < 0:
            raise ConfigurationError("restart_backoff_jitter must be >= 0")
        if self.retry_budget < 0:
            raise ConfigurationError("retry_budget must be >= 0 (0 = no retries)")
        if self.retry_backoff_base_seconds < 0:
            raise ConfigurationError("retry_backoff_base_seconds must be >= 0")
        if self.retry_backoff_max_seconds < 0:
            raise ConfigurationError("retry_backoff_max_seconds must be >= 0")
        if self.retry_backoff_jitter < 0:
            raise ConfigurationError("retry_backoff_jitter must be >= 0")
        if self.circuit_breaker_failures < 0:
            raise ConfigurationError(
                "circuit_breaker_failures must be >= 0 (0 = disabled)"
            )
        if self.degraded_stale_entries < 0:
            raise ConfigurationError("degraded_stale_entries must be >= 0 (0 = off)")
        if self.degraded_stale_max_bytes < 0:
            raise ConfigurationError(
                "degraded_stale_max_bytes must be >= 0 (0 = no byte bound)"
            )
        if self.health_interval_jitter < 0:
            raise ConfigurationError("health_interval_jitter must be >= 0")
        if self.replicas_per_dataset < 0:
            raise ConfigurationError(
                "replicas_per_dataset must be >= 0 (0 = no replication)"
            )
        if self.replica_max_lag_records < 0:
            raise ConfigurationError("replica_max_lag_records must be >= 0")
        if self.replication_poll_seconds <= 0:
            raise ConfigurationError("replication_poll_seconds must be positive")
        if self.replication_poll_jitter < 0:
            raise ConfigurationError("replication_poll_jitter must be >= 0")


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing, latency-histogram and slow-query-log settings (PR 8).

    ``trace_enabled``
        Mint/honor ``X-GVDB-Trace-Id`` and record span trees for every
        request at the router and workers.  Off: requests carry no trace and
        the ``/debug`` endpoints serve empty results.
    ``histogram_enabled``
        Record per-operation latency histograms in ``ServiceMetrics`` (the
        ``latency`` section of ``/metrics``).
    ``trace_ring_size``
        Completed traces retained per process for ``GET /debug/trace/<id>``.
    ``slow_trace_seconds``
        Requests at or above this wall time enter the slow-query log
        (``GET /debug/slow?n=``).
    ``slow_log_size``
        Worst offenders retained in the slow-query log.
    ``query_log_records``
        Per-query records :class:`repro.core.monitoring.QueryLog` keeps in
        its bounded deques (aggregate stats stay exact via histograms).
    ``profile_hz``
        Default sampling rate for ``GET /debug/profile`` / ``repro profile``
        (prime, so the sampler does not beat against second-aligned work).
    ``profile_max_stacks``
        Bound on distinct collapsed stacks one profile collection retains;
        overflow samples collapse into a single sentinel stack.
    ``profile_max_seconds``
        Upper clamp on a single profile collection's duration (a profile
        request holds one executor thread for its whole run).
    ``memory_sample_seconds``
        Period of the background RSS/attribution sampler (PR 10); the same
        tick re-estimates pooled datasets' ``resident_bytes``.
    ``tracemalloc_enabled``
        Start ``tracemalloc`` at service startup so ``GET /debug/memory``
        can report top allocation sites.  Off by default: tracing
        allocations costs real CPU and memory.
    """

    trace_enabled: bool = True
    histogram_enabled: bool = True
    trace_ring_size: int = 256
    slow_trace_seconds: float = 0.25
    slow_log_size: int = 64
    query_log_records: int = 4096
    profile_hz: int = 97
    profile_max_stacks: int = 4096
    profile_max_seconds: float = 60.0
    memory_sample_seconds: float = 10.0
    tracemalloc_enabled: bool = False

    def __post_init__(self) -> None:
        if self.trace_ring_size <= 0:
            raise ConfigurationError("trace_ring_size must be positive")
        if self.slow_trace_seconds < 0:
            raise ConfigurationError("slow_trace_seconds must be >= 0")
        if self.slow_log_size <= 0:
            raise ConfigurationError("slow_log_size must be positive")
        if self.query_log_records <= 0:
            raise ConfigurationError("query_log_records must be positive")
        if self.profile_hz <= 0:
            raise ConfigurationError("profile_hz must be positive")
        if self.profile_max_stacks <= 0:
            raise ConfigurationError("profile_max_stacks must be positive")
        if self.profile_max_seconds <= 0:
            raise ConfigurationError("profile_max_seconds must be positive")
        if self.memory_sample_seconds <= 0:
            raise ConfigurationError("memory_sample_seconds must be positive")


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives, error budgets and adaptive admission (PR 9).

    A request is *SLO-good* when it succeeded (no 503/504) **and** finished
    within its operation's latency target; everything else consumes error
    budget.  With the default ``availability_target`` of 0.99 the budget
    allows 1% bad requests, so "budget burning faster than earned" is exactly
    "the operation's p99 is above its latency target" — the property the
    adaptive admission controller regulates against.

    ``enabled``
        Track per-op SLO compliance in :class:`~repro.slo.SLOEngine` (the
        ``slo`` section of ``/metrics`` and the ``gvdb_slo_*`` Prometheus
        families).  Off: no engine is attached and the section is empty.
    ``latency_targets``
        ``(op, seconds)`` pairs: the per-operation latency targets.  Ops
        without a target only count availability (503/504) against the
        budget.
    ``availability_target``
        Fraction of requests that must be SLO-good over the slow window
        (0.99 = 1% error budget).
    ``fast_burn_window_seconds`` / ``slow_burn_window_seconds``
        The two burn-rate windows (default 5 min / 1 h).  The fast window
        detects acute burn ("page"), the slow window sustained burn
        ("warn"); budget remaining is accounted over the slow window.
    ``fast_burn_threshold`` / ``slow_burn_threshold``
        Burn-rate multiples (consumption relative to the sustainable rate
        ``1 - availability_target``) above which each window alerts.
    ``adaptive_admission``
        Replace the fixed ``ServiceConfig.max_queue_depth`` admission limit
        with an AIMD-controlled effective limit driven by the ``window``
        op's budget burn (see :class:`~repro.slo.AdaptiveAdmission`).
    ``admission_min_queue_depth``
        Floor the adaptive limit never tightens below.
    ``admission_increase_step``
        Additive raise (requests) applied each healthy evaluation interval.
    ``admission_backoff_factor``
        Multiplicative cut applied when the budget is burning (in (0, 1)).
    ``admission_interval_seconds``
        Minimum time between controller re-evaluations (lazy, on admit).
    ``admission_burn_window_seconds``
        Burn-rate lookback the controller reacts to (shorter than the alert
        windows so the loop is responsive).
    """

    enabled: bool = True
    latency_targets: tuple = (
        ("window", 0.25),
        ("keyword", 0.25),
        ("nearest", 0.25),
        ("edit", 0.5),
        ("session", 0.5),
    )
    availability_target: float = 0.99
    fast_burn_window_seconds: float = 300.0
    slow_burn_window_seconds: float = 3600.0
    fast_burn_threshold: float = 14.0
    slow_burn_threshold: float = 6.0
    adaptive_admission: bool = False
    admission_min_queue_depth: int = 4
    admission_increase_step: int = 1
    admission_backoff_factor: float = 0.5
    admission_interval_seconds: float = 1.0
    admission_burn_window_seconds: float = 10.0

    def __post_init__(self) -> None:
        for pair in self.latency_targets:
            if len(pair) != 2 or not pair[0] or float(pair[1]) <= 0:
                raise ConfigurationError(
                    "latency_targets must be (op, positive-seconds) pairs"
                )
        if not 0.0 < self.availability_target < 1.0:
            raise ConfigurationError("availability_target must be in (0, 1)")
        if self.fast_burn_window_seconds <= 0:
            raise ConfigurationError("fast_burn_window_seconds must be positive")
        if self.slow_burn_window_seconds < self.fast_burn_window_seconds:
            raise ConfigurationError(
                "slow_burn_window_seconds must be >= fast_burn_window_seconds"
            )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ConfigurationError("burn thresholds must be positive")
        if self.admission_min_queue_depth <= 0:
            raise ConfigurationError("admission_min_queue_depth must be positive")
        if self.admission_increase_step <= 0:
            raise ConfigurationError("admission_increase_step must be positive")
        if not 0.0 < self.admission_backoff_factor < 1.0:
            raise ConfigurationError(
                "admission_backoff_factor must be in (0, 1)"
            )
        if self.admission_interval_seconds <= 0:
            raise ConfigurationError("admission_interval_seconds must be positive")
        if self.admission_burn_window_seconds <= 0:
            raise ConfigurationError(
                "admission_burn_window_seconds must be positive"
            )

    def latency_target(self, op: str) -> float | None:
        """The latency target for ``op``, or ``None`` when untargeted."""
        for name, seconds in self.latency_targets:
            if name == op:
                return float(seconds)
        return None


@dataclass(frozen=True)
class GraphVizDBConfig:
    """Top-level configuration bundling every subsystem's settings."""

    partition: PartitionConfig = field(default_factory=PartitionConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    abstraction: AbstractionConfig = field(default_factory=AbstractionConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)
    client: ClientConfig = field(default_factory=ClientConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    write: WriteConfig = field(default_factory=WriteConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    slo: SLOConfig = field(default_factory=SLOConfig)

    @classmethod
    def small(cls) -> "GraphVizDBConfig":
        """A configuration tuned for small graphs (tests, examples)."""
        return cls(
            partition=PartitionConfig(max_partition_nodes=200),
            layout=LayoutConfig(iterations=30),
            abstraction=AbstractionConfig(num_layers=2),
        )

    @classmethod
    def benchmark(cls) -> "GraphVizDBConfig":
        """The configuration used by the benchmark harness (Table I / Fig. 3).

        ``area_per_node`` is raised so the drawing density (objects per pixel)
        matches the regime of the paper's Fig. 3, where a 3000x3000 pixel window
        contains a few hundred graph elements.
        """
        return cls(
            partition=PartitionConfig(max_partition_nodes=1200),
            layout=LayoutConfig(iterations=40, area_per_node=60_000.0),
            abstraction=AbstractionConfig(num_layers=4),
        )

"""Command-line interface.

Exposes the main workflows of the library without writing Python:

* ``preprocess`` — run the offline pipeline on a named demo dataset or a graph
  file and persist the result to SQLite;
* ``explore`` — run a scripted exploration (window query, keyword search,
  layer walk) against a preprocessed SQLite database and print the results;
* ``stats`` — print the statistics-panel summary of a dataset or database;
* ``bench`` — run the Table I / Fig. 3 harness at a chosen scale;
* ``serve`` — serve one or more preprocessed SQLite databases to concurrent
  clients over HTTP: in-process by default, or behind a multi-process cluster
  router with ``--workers N`` (or run a self-contained concurrency smoke
  workload with ``--smoke``);
* ``top`` — poll a running server's ``/metrics`` and ``/health`` endpoints and
  render a live per-dataset table (QPS, p99, queue depth, replica lag) plus
  per-op SLO columns (503/504 rates, budget remaining, burn-rate alerts);
* ``loadgen`` — replay a seeded, deterministic multi-session exploration trace
  against a running server or router and print the per-op latency/error
  report.

Run as ``python -m repro <command> ...``; see ``--help`` on each command.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench.reporting import format_figure3, format_table1
from .bench.runner import build_benchmark_datasets, run_figure3, run_table1
from .config import (
    AbstractionConfig,
    GraphVizDBConfig,
    LayoutConfig,
    PartitionConfig,
)
from .core.pipeline import PreprocessingPipeline
from .core.query_manager import QueryManager
from .graph.datasets import available_datasets, load_dataset
from .graph.io import read_edge_list, read_json, read_triples
from .graph.metrics import compute_statistics
from .graph.model import Graph
from .storage.sqlite_backend import load_from_sqlite, save_to_sqlite

__all__ = ["main", "build_parser"]


def _load_graph(args: argparse.Namespace) -> Graph:
    """Load the input graph from ``--dataset`` or ``--input``."""
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    path = Path(args.input)
    if not path.exists():
        raise SystemExit(f"input file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix in {".json"}:
        return read_json(path)
    if suffix in {".nt", ".tsv", ".triples"}:
        return read_triples(path)
    return read_edge_list(path)


def _config_from(args: argparse.Namespace) -> GraphVizDBConfig:
    """Build a pipeline configuration from CLI flags."""
    return GraphVizDBConfig(
        partition=PartitionConfig(
            num_partitions=args.partitions,
            max_partition_nodes=args.max_partition_nodes,
            method=args.partition_method,
            seed=args.seed,
        ),
        layout=LayoutConfig(
            algorithm=args.layout,
            iterations=args.layout_iterations,
            seed=args.seed,
        ),
        abstraction=AbstractionConfig(
            num_layers=args.layers,
            criterion=args.criterion,
        ),
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_preprocess(args: argparse.Namespace) -> int:
    """Run Steps 1-5 and store the database in a SQLite file."""
    graph = _load_graph(args)
    print(f"preprocessing {graph.name!r}: {graph.num_nodes} nodes, {graph.num_edges} edges")
    pipeline = PreprocessingPipeline(_config_from(args))
    result = pipeline.run(graph)
    for timing in result.report.steps:
        print(f"  step {timing.step} ({timing.name:<20}): {timing.seconds:8.3f}s")
    output = Path(args.output)
    save_to_sqlite(result.database, output)
    print(f"stored {result.database.num_layers} layers in {output} "
          f"({output.stat().st_size / 1024:.0f} KiB)")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run a small scripted exploration against a preprocessed database."""
    database = load_from_sqlite(args.database)
    manager = QueryManager(database)
    viewport = manager.default_viewport(layer=args.layer)
    result = manager.viewport_query(viewport, layer=args.layer)
    print(f"dataset {database.name!r}: layers {database.layers()}")
    print(f"viewport window on layer {args.layer}: {result.num_objects} objects "
          f"({result.db_query_seconds * 1000:.2f} ms DB, "
          f"{result.json_build_seconds * 1000:.2f} ms JSON)")
    if args.keyword:
        search = manager.keyword_search(args.keyword, layer=args.layer, limit=args.limit)
        print(f"keyword {args.keyword!r}: {search.num_matches} matches")
        for match in search.matches[: args.limit]:
            print(f"  node {match['node_id']:>8}  {match['label']}")
        if search.matches:
            node_id = search.matches[0]["node_id"]
            _, focused = manager.focus_on_node(node_id, viewport, layer=args.layer)
            print(f"focused on node {node_id}: {focused.num_objects} objects in its window")
    if args.json:
        print(json.dumps(database.storage_summary(), indent=2))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print the Statistics-panel summary for a dataset or database."""
    if args.database:
        database = load_from_sqlite(args.database)
        print(json.dumps(database.storage_summary(), indent=2))
        return 0
    graph = _load_graph(args)
    stats = compute_statistics(graph)
    print(json.dumps(stats.as_dict(), indent=2))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the Table I / Fig. 3 harness at the requested scale."""
    config = GraphVizDBConfig.benchmark()
    datasets = build_benchmark_datasets(scale=args.scale)
    table1 = run_table1(datasets=datasets, config=config)
    print(format_table1(table1))
    print()
    for name in sorted(datasets):
        series = run_figure3(
            table1.results[name], name, queries_per_size=args.queries
        )
        print(format_figure3(series))
        print()
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    """List the named demo datasets."""
    for name in available_datasets():
        graph = load_dataset(name, scale=0.05, seed=1)
        print(f"{name:<10} (at scale 0.05: {graph.num_nodes} nodes, {graph.num_edges} edges)")
    return 0


def cmd_journal_verify(args: argparse.Namespace) -> int:
    """Verify a database's write-ahead journal frame by frame.

    Prints a JSON report: the last good sequence number, whether the tail is
    torn (a crash mid-append — harmless, replay discards it), and whether
    there is mid-file corruption (a bad checksum *followed by* valid frames —
    replay refuses such a journal, and so does this command's exit status).
    """
    from .writes.journal import journal_path_for, verify_journal

    path = Path(args.database)
    journal = journal_path_for(path) if path.suffix != ".journal" else path
    report = verify_journal(journal)
    print(json.dumps(report, indent=2))
    if report["corrupt"]:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve preprocessed SQLite databases to concurrent clients."""
    import asyncio
    import errno

    from .config import (
        ClusterConfig,
        ObservabilityConfig,
        ServiceConfig,
        WriteConfig,
    )
    from .service.frontend import GraphVizDBService
    from .service.http import serve_http

    config = GraphVizDBConfig(
        service=ServiceConfig(
            max_workers=args.threads,
            max_queue_depth=args.max_queue_depth,
            pool_capacity=max(args.pool_capacity, len(args.database)),
        ),
        cluster=ClusterConfig(
            num_workers=max(args.workers, 0), worker_threads=args.threads
        ),
        write=WriteConfig(
            journal_enabled=not args.no_journal,
            journal_fsync=args.fsync,
        ),
        observability=ObservabilityConfig(
            trace_enabled=not args.no_trace,
            slow_trace_seconds=args.slow_trace_ms / 1000.0,
            tracemalloc_enabled=args.tracemalloc,
        ),
    )
    datasets: dict[str, str] = {}
    for path_text in args.database:
        path = Path(path_text)
        if not path.exists():
            raise SystemExit(f"database file {path} does not exist")
        if path.stem in datasets:
            raise SystemExit(
                f"duplicate dataset name {path.stem!r} (file stems must be "
                f"unique; rename one of the --database files)"
            )
        datasets[path.stem] = str(path)
    print(f"serving datasets: {', '.join(sorted(datasets))}")

    if args.smoke:
        if args.workers > 0:
            raise SystemExit(
                "--smoke runs an in-process workload and cannot be combined "
                "with --workers N; drop one of the flags"
            )
        service = GraphVizDBService(config)
        for name, path_text in datasets.items():
            service.attach_sqlite(name, path_text)
        return _serve_smoke(service, requests=args.smoke, clients=args.clients)

    if args.workers > 0:
        run = _serve_cluster(datasets, config, host=args.host, port=args.port)
    else:
        run = _serve_single(datasets, config, host=args.host, port=args.port)
    try:
        asyncio.run(run)
    except KeyboardInterrupt:
        print("stopped")
    except OSError as exc:
        # The common operational failure (port already bound) must exit with
        # a clear one-line error, not a raw traceback.
        if exc.errno in (errno.EADDRINUSE, errno.EACCES):
            raise SystemExit(
                f"cannot bind {args.host}:{args.port}: {exc.strerror or exc} "
                f"(is another server already running on that port?)"
            ) from exc
        raise
    return 0


async def _serve_single(
    datasets: dict[str, str], config: GraphVizDBConfig, host: str, port: int
) -> None:
    """Serve every dataset from one in-process service (``--workers 0``)."""
    from .service.frontend import GraphVizDBService
    from .service.http import serve_http

    service = GraphVizDBService(config)
    for name, path_text in datasets.items():
        service.attach_sqlite(name, path_text)
    async with service:
        server = await serve_http(service, host=host, port=port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        print(f"listening on http://{bound_host}:{bound_port} (Ctrl-C to stop)")
        async with server:
            await server.serve_forever()


async def _serve_cluster(
    datasets: dict[str, str], config: GraphVizDBConfig, host: str, port: int
) -> None:
    """Serve through a router over ``--workers N`` worker processes."""
    import asyncio
    import signal

    from .cluster.router import ClusterRouter

    router = ClusterRouter(datasets, config=config)
    # A failed public bind tears down the spawned fleet inside start().
    await router.start(host=host, port=port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    print(
        f"cluster of {config.cluster.num_workers} workers listening on "
        f"http://{host}:{router.port} (Ctrl-C to drain and stop)"
    )
    await stop.wait()
    print("draining cluster...")
    await router.stop()
    print("stopped")


def _serve_smoke(service, requests: int, clients: int) -> int:
    """Drive the service with an in-process concurrent workload, print metrics.

    This is the no-network proof that the serving stack works end to end:
    ``clients`` threads issue ``requests`` window queries each (drawn from a
    small shared set of windows, like users crowding popular regions), and the
    resulting metrics snapshot goes to stdout as JSON.
    """
    import threading

    from .service.frontend import ServiceRuntime

    with ServiceRuntime(service) as runtime:
        dataset = service.datasets()[0]
        first = runtime.window_query(dataset)
        window = first.window
        step = window.width / 4
        windows = [
            window.translated(i * step, 0) for i in range(4)
        ]
        errors: list[Exception] = []

        def client(seed: int) -> None:
            for i in range(requests):
                try:
                    runtime.window_query(dataset, windows[(seed + i) % len(windows)])
                except Exception as exc:  # surface, don't hang the join
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        summary = runtime.metrics_summary()
    if errors:
        raise SystemExit(f"smoke workload failed: {errors[0]}")
    print(json.dumps(summary, indent=2))
    return 0


def _format_bytes(value: object) -> str:
    """Human-readable byte count for the ``top``/``profile`` panes."""
    try:
        count = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(count) < 1024.0 or unit == "GiB":
            return f"{count:.0f}{unit}" if unit == "B" else f"{count:.1f}{unit}"
        count /= 1024.0
    return f"{count:.1f}GiB"


def cmd_top(args: argparse.Namespace) -> int:
    """Live per-dataset serving table, polled from ``/metrics`` + ``/health``.

    Works against either face of the serving stack — a single in-process
    worker or a cluster router — because both expose the same ``/metrics``
    shape (the router's is the fleet-wide merge).  QPS is computed from the
    delta of per-dataset completion counters between polls; p99 comes from
    the merged latency histograms; replica lag from the health watermarks.
    """
    import time
    import urllib.error
    import urllib.request

    base = f"http://{args.host}:{args.port}"

    def fetch(path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=5.0) as response:
            decoded = json.loads(response.read())
        return decoded if isinstance(decoded, dict) else {}

    def quantile_ms(state: object, key: str) -> str:
        if isinstance(state, dict) and state.get("count"):
            return f"{float(state.get(key, 0.0)) * 1000.0:.1f}"
        return "-"

    previous: dict[str, int] = {}
    previous_at: float | None = None
    rounds = 0
    try:
        while args.iterations <= 0 or rounds < args.iterations:
            if rounds:
                time.sleep(args.interval)
            try:
                metrics = fetch("/metrics")
                health = fetch("/health")
            except (OSError, urllib.error.URLError) as exc:
                raise SystemExit(f"cannot reach {base}: {exc}")
            rounds += 1
            now = time.monotonic()
            requests_section = metrics.get("requests") or {}
            completed = {
                str(name): int(count) for name, count in
                (requests_section.get("completed_by_dataset") or {}).items()
            }
            queue_depth = metrics.get("queue_depth") or {}
            latency = metrics.get("latency") or {}
            # Replica lag: the router health nests per-worker watermarks; a
            # single worker reports its own subscriptions directly.
            replication = health.get("replication") or {}
            per_worker = replication.get("watermarks")
            if not isinstance(per_worker, dict):
                per_worker = {"self": replication}
            lags: dict[str, int] = {}
            for statuses in per_worker.values():
                if not isinstance(statuses, dict):
                    continue
                for dataset, status in statuses.items():
                    if isinstance(status, dict) and "lag" in status:
                        lags[dataset] = max(
                            lags.get(dataset, 0), int(status.get("lag", 0))
                        )
            elapsed = now - previous_at if previous_at is not None else None
            slo_section = metrics.get("slo") or {}
            slo_ops = slo_section.get("ops") or {}
            if not isinstance(slo_ops, dict):
                slo_ops = {}

            def slo_columns(op: str) -> tuple[str, str, str, str]:
                entry = slo_ops.get(op)
                if not isinstance(entry, dict):
                    return "-", "-", "-", "-"
                total = int(entry.get("good", 0)) + int(entry.get("bad", 0))
                if not total:
                    return "-", "-", "-", str(entry.get("alert", "-"))
                return (
                    f"{100.0 * int(entry.get('errors_503', 0)) / total:.1f}",
                    f"{100.0 * int(entry.get('errors_504', 0)) / total:.1f}",
                    f"{100.0 * float(entry.get('budget_remaining', 1.0)):.0f}",
                    str(entry.get("alert", "ok")),
                )

            print(f"--- {base}  status={health.get('status', '?')}  "
                  f"inflight={health.get('inflight', 0)}  poll {rounds}")
            print(f"{'op':<10} {'count':>8} {'p50 ms':>8} {'p95 ms':>8} "
                  f"{'p99 ms':>8} {'503 %':>6} {'504 %':>6} {'budget %':>9} "
                  f"{'alert':>6}")
            for op in ("window", "keyword", "nearest", "edit", "session"):
                state = latency.get(op)
                count = state.get("count", 0) if isinstance(state, dict) else 0
                rate_503, rate_504, budget, alert = slo_columns(op)
                print(f"{op:<10} {count:>8} {quantile_ms(state, 'p50'):>8} "
                      f"{quantile_ms(state, 'p95'):>8} "
                      f"{quantile_ms(state, 'p99'):>8} {rate_503:>6} "
                      f"{rate_504:>6} {budget:>9} {alert:>6}")
            admission = slo_section.get("admission") if isinstance(
                slo_section, dict) else None
            if isinstance(admission, dict):
                print(f"admission  limit={admission.get('effective_limit', '?')}"
                      f"/{admission.get('max_limit', '?')}  "
                      f"cuts={admission.get('decreases', 0)}  "
                      f"raises={admission.get('increases', 0)}")
            memory = metrics.get("memory") or {}
            if isinstance(memory, dict):
                components = sorted(
                    key for key in memory
                    if key.endswith("_bytes") and key != "peak_rss_bytes"
                    and isinstance(memory.get(key), (int, float))
                )
                if components:
                    panes = "  ".join(
                        f"{key[:-len('_bytes')]}={_format_bytes(memory[key])}"
                        for key in components
                    )
                    print(f"memory     {panes}  "
                          f"peak={_format_bytes(memory.get('peak_rss_bytes', 0))}")
            datasets = sorted(set(completed) | set(queue_depth) | set(lags))
            print(f"{'dataset':<16} {'qps':>8} {'queue':>6} {'lag':>6}")
            for dataset in datasets:
                if elapsed and elapsed > 0:
                    delta = completed.get(dataset, 0) - previous.get(dataset, 0)
                    qps = f"{max(0, delta) / elapsed:.1f}"
                else:
                    qps = "-"
                print(f"{dataset:<16} {qps:>8} "
                      f"{int(queue_depth.get(dataset, 0)):>6} "
                      f"{lags.get(dataset, 0):>6}")
            previous = completed
            previous_at = now
    except KeyboardInterrupt:
        pass
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Collect a sampling profile from a running server (or whole cluster).

    Hits ``GET /debug/profile`` — against a router that fans out to every
    alive worker and merges the collapsed stacks fleet-wide — writes the
    result in collapsed-stack format (one ``op;frame;...;frame count`` line
    per stack, directly consumable by flamegraph tooling), and prints the
    per-op sample split plus the hottest frames.
    """
    import urllib.error
    import urllib.request

    from .obs import format_collapsed, op_totals, top_frames

    base = f"http://{args.host}:{args.port}"
    query = f"/debug/profile?seconds={args.seconds:g}"
    if args.hz:
        query += f"&hz={args.hz}"
    try:
        with urllib.request.urlopen(
            base + query, timeout=args.seconds + 30.0
        ) as response:
            payload = json.loads(response.read())
    except (OSError, urllib.error.URLError) as exc:
        raise SystemExit(f"cannot reach {base}: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"unexpected profile payload from {base}")
    stacks = {
        str(key): int(value)
        for key, value in (payload.get("stacks") or {}).items()
    }
    output = Path(args.output)
    output.write_text(format_collapsed(stacks))
    samples = int(payload.get("samples", 0))
    print(f"{samples} samples over {payload.get('seconds', '?')}s "
          f"@ {payload.get('hz', '?')}Hz -> {output}")
    workers = payload.get("workers")
    if isinstance(workers, dict) and workers:
        print("per-worker samples: " + "  ".join(
            f"{worker_id}={int(info.get('samples', 0))}"
            for worker_id, info in sorted(workers.items())
            if isinstance(info, dict)
        ))
    totals = op_totals(stacks)
    if totals:
        print(f"\n{'op':<24} {'samples':>8} {'share %':>8}")
        for op, count in sorted(totals.items(), key=lambda item: -item[1]):
            share = 100.0 * count / samples if samples else 0.0
            print(f"{op:<24} {count:>8} {share:>8.1f}")
    frames = top_frames(stacks, args.top)
    if frames:
        print(f"\n{'frame':<56} {'self':>8} {'total':>8}")
        for entry in frames:
            print(f"{str(entry['frame'])[:56]:<56} "
                  f"{entry['self']:>8} {entry['total']:>8}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Seeded trace-driven load against a running server; JSON report to stdout.

    Asks the target for its served datasets, generates a deterministic
    multi-session exploration trace (same seed ⇒ byte-identical op sequence),
    replays it over keep-alive connections, and prints the per-op latency /
    error report.  ``--trace-only`` prints the generated trace without
    touching the server — useful for inspecting the workload model.
    """
    import urllib.error
    import urllib.request

    from .slo.loadgen import LoadgenConfig, generate_trace, run_trace

    config = LoadgenConfig(
        sessions=args.sessions,
        ops_per_session=args.ops_per_session,
        concurrency=args.concurrency,
        seed=args.seed,
        write_fraction=args.write_fraction,
        think_time_seconds=args.think_time,
    )
    base = f"http://{args.host}:{args.port}"
    try:
        with urllib.request.urlopen(base + "/datasets", timeout=5.0) as response:
            datasets = list(json.loads(response.read()).get("datasets", []))
    except (OSError, urllib.error.URLError) as exc:
        raise SystemExit(f"cannot reach {base}: {exc}")
    if not datasets:
        raise SystemExit(f"{base} serves no datasets")
    trace = generate_trace(datasets, config)
    if args.trace_only:
        for session in trace:
            for op in session:
                print(json.dumps({"op": op.op, "method": op.method,
                                  "target": op.target}))
        return 0
    report = run_trace(args.host, args.port, trace, config)
    print(json.dumps(report.to_dict(), indent=2))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", choices=available_datasets(),
                       help="named synthetic demo dataset")
    group.add_argument("--input", help="graph file (.txt edge list, .nt triples, .json)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="size multiplier for named datasets (default 0.25)")
    parser.add_argument("--seed", type=int, default=42, help="random seed")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="graphVizdb reproduction — preprocessing, exploration and benchmarks",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    preprocess = subparsers.add_parser("preprocess", help="run Steps 1-5 and store to SQLite")
    _add_graph_source(preprocess)
    preprocess.add_argument("--output", default="graphvizdb.sqlite", help="SQLite output file")
    preprocess.add_argument("--partitions", type=int, default=0,
                            help="number of partitions (0 = derive from memory budget)")
    preprocess.add_argument("--max-partition-nodes", type=int, default=1000)
    preprocess.add_argument("--partition-method", default="multilevel",
                            choices=["multilevel", "bfs", "random", "hash"])
    preprocess.add_argument("--layout", default="force_directed")
    preprocess.add_argument("--layout-iterations", type=int, default=30)
    preprocess.add_argument("--layers", type=int, default=3,
                            help="number of abstraction layers above layer 0")
    preprocess.add_argument("--criterion", default="degree",
                            choices=["degree", "pagerank", "hits", "merge"])
    preprocess.set_defaults(handler=cmd_preprocess)

    explore = subparsers.add_parser("explore", help="query a preprocessed SQLite database")
    explore.add_argument("--database", required=True, help="SQLite file from 'preprocess'")
    explore.add_argument("--layer", type=int, default=0)
    explore.add_argument("--keyword", help="keyword to search for")
    explore.add_argument("--limit", type=int, default=10)
    explore.add_argument("--json", action="store_true", help="also print the storage summary")
    explore.set_defaults(handler=cmd_explore)

    stats = subparsers.add_parser("stats", help="print dataset or database statistics")
    source = stats.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=available_datasets())
    source.add_argument("--input")
    source.add_argument("--database", help="SQLite file from 'preprocess'")
    stats.add_argument("--scale", type=float, default=0.25)
    stats.add_argument("--seed", type=int, default=42)
    stats.set_defaults(handler=cmd_stats)

    bench = subparsers.add_parser("bench", help="run the Table I / Fig. 3 harness")
    bench.add_argument("--scale", type=float, default=0.25)
    bench.add_argument("--queries", type=int, default=30,
                       help="random windows per window size")
    bench.set_defaults(handler=cmd_bench)

    datasets = subparsers.add_parser("datasets", help="list the named demo datasets")
    datasets.set_defaults(handler=cmd_datasets)

    journal = subparsers.add_parser(
        "journal", help="inspect a database's write-ahead journal"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    verify = journal_sub.add_parser(
        "verify",
        help="walk the journal frame by frame and report the last good "
             "sequence, torn-tail bytes, and any mid-file corruption "
             "(nonzero exit)",
    )
    verify.add_argument("database",
                        help="SQLite file from 'preprocess' (its .journal "
                             "sibling is verified), or a .journal path "
                             "directly")
    verify.set_defaults(handler=cmd_journal_verify)

    serve = subparsers.add_parser(
        "serve", help="serve preprocessed SQLite databases to concurrent clients"
    )
    serve.add_argument("--database", action="append", required=True,
                       help="SQLite file from 'preprocess' (repeatable; the file "
                            "stem becomes the dataset name)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="HTTP port (0 = pick a free one)")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes behind a cluster router "
                            "(0 = serve from this process, no router)")
    serve.add_argument("--threads", type=int, default=4,
                       help="query worker threads per serving process")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="per-dataset admission limit before 503")
    serve.add_argument("--pool-capacity", type=int, default=4,
                       help="max simultaneously open datasets")
    serve.add_argument("--fsync", default="batch",
                       choices=["always", "batch", "never"],
                       help="write-ahead journal fsync policy for POST /edit/* "
                            "(always = every edit survives power loss; batch = "
                            "acknowledged edits survive process crashes)")
    serve.add_argument("--no-journal", action="store_true",
                       help="disable the write-ahead journal (edits are applied "
                            "in memory only and a crash loses them)")
    serve.add_argument("--smoke", type=int, default=0, metavar="REQUESTS",
                       help="instead of listening, run REQUESTS window queries "
                            "per client in-process and print the metrics")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads for --smoke")
    serve.add_argument("--slow-trace-ms", type=float, default=250.0,
                       help="requests slower than this land in the slow-query "
                            "log at GET /debug/slow")
    serve.add_argument("--no-trace", action="store_true",
                       help="disable request tracing (spans, /debug/trace, "
                            "the slow-query log)")
    serve.add_argument("--tracemalloc", action="store_true",
                       help="enable tracemalloc allocation tracking (adds "
                            "overhead; per-site breakdown at GET /debug/memory)")
    serve.set_defaults(handler=cmd_serve)

    top = subparsers.add_parser(
        "top", help="live per-dataset QPS/p99/queue/lag table from a "
                    "running server or cluster router"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8080)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after this many polls (0 = until Ctrl-C)")
    top.set_defaults(handler=cmd_top)

    profile = subparsers.add_parser(
        "profile", help="collect a sampling profile from a running server or "
                        "cluster router and write collapsed stacks"
    )
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument("--port", type=int, default=8080)
    profile.add_argument("--seconds", type=float, default=2.0,
                         help="sampling window (server clamps to its "
                              "profile_max_seconds)")
    profile.add_argument("--hz", type=int, default=0,
                         help="sampling frequency (0 = server default)")
    profile.add_argument("--output", default="profile.collapsed",
                         help="collapsed-stack output file "
                              "(flamegraph.pl/speedscope compatible)")
    profile.add_argument("--top", type=int, default=15,
                         help="hottest frames to print (default 15)")
    profile.set_defaults(handler=cmd_profile)

    loadgen = subparsers.add_parser(
        "loadgen", help="replay a seeded multi-session exploration trace "
                        "against a running server and print the latency/SLO "
                        "report"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8080)
    loadgen.add_argument("--sessions", type=int, default=200,
                         help="exploration sessions to simulate (default 200)")
    loadgen.add_argument("--ops-per-session", type=int, default=12,
                         help="random-walk steps per session (default 12)")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="client threads replaying sessions (default 8)")
    loadgen.add_argument("--seed", type=int, default=42,
                         help="trace seed — same seed, same op sequence")
    loadgen.add_argument("--write-fraction", type=float, default=0.02,
                         help="per-step probability of an edit (default 0.02)")
    loadgen.add_argument("--think-time", type=float, default=0.0,
                         help="seconds to pause between a session's ops")
    loadgen.add_argument("--trace-only", action="store_true",
                         help="print the generated trace as JSON lines "
                              "instead of replaying it")
    loadgen.set_defaults(handler=cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Birdview panel: a coarse raster overview of the whole drawing.

The Web UI shows "a large-scale image of the whole graph on the plane"; the
user can click anywhere in it to jump there.  The simulated birdview rasterises
node positions of a chosen layer into a small density grid, which the examples
print as ASCII art and the session uses to translate birdview clicks into plane
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError
from ..spatial.geometry import Point, Rect
from ..storage.database import GraphVizDatabase

__all__ = ["Birdview"]

_DENSITY_CHARS = " .:-=+*#%@"


@dataclass
class Birdview:
    """A coarse density raster of one layer's drawing.

    Attributes
    ----------
    bounds:
        Plane rectangle covered by the raster.
    width / height:
        Raster resolution in cells.
    grid:
        Row-major density counts (``grid[row][col]``).
    """

    bounds: Rect
    width: int
    height: int
    grid: list[list[int]]

    @classmethod
    def from_database(
        cls, database: GraphVizDatabase, layer: int = 0, width: int = 60, height: int = 24
    ) -> "Birdview":
        """Rasterise one layer of a database into a ``width x height`` grid."""
        if width <= 0 or height <= 0:
            raise QueryError("birdview resolution must be positive")
        bounds = database.bounds(layer)
        if bounds is None:
            raise QueryError(f"layer {layer} is empty")
        grid = [[0] * width for _ in range(height)]
        table = database.table(layer)
        span_x = bounds.width or 1.0
        span_y = bounds.height or 1.0
        for row in table.scan():
            start, end = row.endpoints()
            for point in (start, end):
                col = int((point.x - bounds.min_x) / span_x * (width - 1))
                line = int((point.y - bounds.min_y) / span_y * (height - 1))
                grid[min(max(line, 0), height - 1)][min(max(col, 0), width - 1)] += 1
        return cls(bounds=bounds, width=width, height=height, grid=grid)

    def cell_center(self, col: int, row: int) -> Point:
        """Return the plane coordinates at the centre of a raster cell.

        This is what a click in the birdview panel maps to.
        """
        if not (0 <= col < self.width and 0 <= row < self.height):
            raise QueryError(f"birdview cell ({col}, {row}) out of range")
        x = self.bounds.min_x + (col + 0.5) / self.width * self.bounds.width
        y = self.bounds.min_y + (row + 0.5) / self.height * self.bounds.height
        return Point(x, y)

    def densest_cell(self) -> tuple[int, int]:
        """Return the ``(col, row)`` of the densest cell (a good place to start exploring)."""
        best = (0, 0)
        best_count = -1
        for row_index, row in enumerate(self.grid):
            for col_index, count in enumerate(row):
                if count > best_count:
                    best_count = count
                    best = (col_index, row_index)
        return best

    def to_ascii(self) -> str:
        """Render the density raster as ASCII art (used by the examples)."""
        maximum = max((count for row in self.grid for count in row), default=0)
        if maximum == 0:
            return "\n".join(" " * self.width for _ in range(self.height))
        lines = []
        for row in self.grid:
            characters = []
            for count in row:
                level = int(count / maximum * (len(_DENSITY_CHARS) - 1))
                characters.append(_DENSITY_CHARS[level])
            lines.append("".join(characters))
        return "\n".join(lines)

"""Client simulator: replays user interactions and measures end-to-end latency.

This is the piece that turns :class:`~repro.core.query_manager.WindowQueryResult`
objects (server-side timings) into the full Fig. 3 breakdown by adding the
simulated Communication + Rendering component of :class:`ClientCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.query_manager import QueryManager, WindowQueryResult
from ..core.session import ExplorationSession
from ..spatial.geometry import Rect
from .canvas import ClientCostModel, RenderedFrame

__all__ = ["InteractionTiming", "ClientSimulator"]


@dataclass(frozen=True)
class InteractionTiming:
    """The Fig. 3 latency breakdown for one window query.

    All times are in seconds; ``num_objects`` is the secondary axis
    ("Nodes + Edges") of the figure.
    """

    db_query_seconds: float
    json_build_seconds: float
    communication_rendering_seconds: float
    num_objects: int
    num_nodes: int
    num_edges: int
    bytes_transferred: int
    filter_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end time (the "Total Time" series of Fig. 3)."""
        return (
            self.db_query_seconds
            + self.filter_seconds
            + self.json_build_seconds
            + self.communication_rendering_seconds
        )

    def as_dict(self) -> dict[str, float | int]:
        """Return the breakdown as a flat dictionary (used by the bench reporters)."""
        return {
            "db_query_seconds": self.db_query_seconds,
            "filter_seconds": self.filter_seconds,
            "json_build_seconds": self.json_build_seconds,
            "communication_rendering_seconds": self.communication_rendering_seconds,
            "total_seconds": self.total_seconds,
            "num_objects": self.num_objects,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "bytes_transferred": self.bytes_transferred,
        }


class ClientSimulator:
    """Wraps a query manager (or session) with the client cost model."""

    def __init__(
        self,
        query_manager: QueryManager,
        cost_model: ClientCostModel | None = None,
    ) -> None:
        self.query_manager = query_manager
        self.cost_model = cost_model or ClientCostModel()

    # ------------------------------------------------------------ single query

    def execute_window(self, window: Rect, layer: int = 0) -> InteractionTiming:
        """Run one window query and return the full latency breakdown."""
        result = self.query_manager.window_query(window, layer=layer)
        return self.account(result)

    def account(self, result: WindowQueryResult) -> InteractionTiming:
        """Attach client-side costs to an existing server-side result."""
        frame = self.render(result)
        return InteractionTiming(
            db_query_seconds=result.db_query_seconds,
            filter_seconds=result.filter_seconds,
            json_build_seconds=result.json_build_seconds,
            communication_rendering_seconds=frame.client_seconds,
            num_objects=result.num_objects,
            num_nodes=len(result.payload.nodes),
            num_edges=len(result.payload.edges),
            bytes_transferred=frame.bytes_received,
        )

    def render(self, result: WindowQueryResult) -> RenderedFrame:
        """Simulate streaming + rendering of one window-query result."""
        communication = self.cost_model.communication_seconds(result.chunks)
        rendering = self.cost_model.rendering_seconds(result.num_objects)
        return RenderedFrame(
            num_nodes=len(result.payload.nodes),
            num_edges=len(result.payload.edges),
            num_chunks=len(result.chunks),
            bytes_received=result.total_bytes,
            communication_seconds=communication,
            rendering_seconds=rendering,
        )

    # -------------------------------------------------------------- trace replay

    def replay_session_trace(
        self, session: ExplorationSession, trace: list[dict[str, object]]
    ) -> list[InteractionTiming]:
        """Replay a list of interactions against a session and time each one.

        Each trace entry is a dictionary with an ``op`` key: ``"pan"`` (dx, dy),
        ``"zoom"`` (factor), ``"layer"`` (layer), ``"focus"`` (node_id) or
        ``"refresh"``.  Unknown operations raise ``ValueError`` so broken traces
        fail loudly.
        """
        timings: list[InteractionTiming] = []
        for entry in trace:
            operation = str(entry.get("op", ""))
            if operation == "pan":
                result = session.pan(float(entry["dx"]), float(entry["dy"]))
            elif operation == "zoom":
                result = session.zoom(float(entry["factor"]))
            elif operation == "layer":
                result = session.change_layer(int(entry["layer"]))
            elif operation == "focus":
                result = session.focus_on(int(entry["node_id"]))
            elif operation == "refresh":
                result = session.refresh()
            else:
                raise ValueError(f"unknown trace operation {operation!r}")
            timings.append(self.account(result))
        return timings

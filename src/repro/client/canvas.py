"""Client-side cost model (browser rendering + network communication).

Fig. 3 of the paper attributes most of the end-to-end latency to
"Communication + Rendering": the time to ship the JSON chunks to the browser
plus the time mxGraph needs to create one DOM object per node/edge.  The real
browser is unavailable in this reproduction, so the client is simulated with a
calibrated linear cost model:

* communication cost = per-request latency + bytes / bandwidth (per chunk);
* rendering cost = fixed canvas setup + per-object DOM creation cost.

The default constants are calibrated so that a ~400-object window (the largest
windows in Fig. 3) lands in the couple-of-seconds range, matching the paper's
reported magnitudes; what matters for reproduction is that the cost is linear
in the number of objects and dominates the DB time, which the model guarantees
by construction — mirroring the real system's behaviour rather than measuring a
browser we do not have.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.streaming import PayloadChunk

__all__ = ["ClientCostModel", "RenderedFrame"]


@dataclass(frozen=True)
class ClientCostModel:
    """Linear cost model for the simulated browser client.

    Attributes
    ----------
    request_latency_s:
        Fixed round-trip latency charged once per streamed chunk.
    bandwidth_bytes_per_s:
        Network bandwidth used to convert chunk sizes into transfer time.
    per_object_render_s:
        DOM-object creation cost charged per node and per edge.
    frame_setup_s:
        Fixed cost per window refresh (canvas clearing, layout of the DOM tree).
    """

    request_latency_s: float = 0.010
    bandwidth_bytes_per_s: float = 2_000_000.0
    per_object_render_s: float = 0.004
    frame_setup_s: float = 0.020

    def communication_seconds(self, chunks: list[PayloadChunk]) -> float:
        """Time to stream all chunks to the client."""
        if not chunks:
            return self.request_latency_s
        total_bytes = sum(chunk.byte_size for chunk in chunks)
        return len(chunks) * self.request_latency_s + total_bytes / self.bandwidth_bytes_per_s

    def rendering_seconds(self, num_objects: int) -> float:
        """Time for the browser to render ``num_objects`` visual objects."""
        return self.frame_setup_s + num_objects * self.per_object_render_s

    def total_seconds(self, chunks: list[PayloadChunk], num_objects: int) -> float:
        """Combined communication + rendering time (the Fig. 3 series)."""
        return self.communication_seconds(chunks) + self.rendering_seconds(num_objects)


@dataclass(frozen=True)
class RenderedFrame:
    """The outcome of rendering one window on the simulated canvas."""

    num_nodes: int
    num_edges: int
    num_chunks: int
    bytes_received: int
    communication_seconds: float
    rendering_seconds: float

    @property
    def num_objects(self) -> int:
        """Total rendered objects."""
        return self.num_nodes + self.num_edges

    @property
    def client_seconds(self) -> float:
        """Communication plus rendering time."""
        return self.communication_seconds + self.rendering_seconds

"""Client simulator: canvas cost model, birdview raster and interaction replay."""

from .birdview import Birdview
from .canvas import ClientCostModel, RenderedFrame
from .simulator import ClientSimulator, InteractionTiming

__all__ = [
    "Birdview",
    "ClientCostModel",
    "RenderedFrame",
    "ClientSimulator",
    "InteractionTiming",
]

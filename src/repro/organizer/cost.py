"""Placement cost model for the partition organizer.

The organizer's objective (paper §II.A, "Organizing Partitions") is twofold:
partitions must not overlap on the global plane, and the total length of the
crossing edges between partitions should be as small as possible.  This module
computes that cost for candidate placements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.model import Edge
from ..layout.base import Layout
from ..spatial.geometry import Point, Rect

__all__ = ["PlacedPartition", "crossing_edge_length", "placement_cost"]


@dataclass
class PlacedPartition:
    """A partition whose local layout has been assigned a cell on the global plane.

    Attributes
    ----------
    partition:
        Partition index.
    layout:
        The partition's layout in *global* coordinates.
    bounds:
        The cell (bounding rectangle, including padding) the partition occupies;
        the non-overlap guarantee is expressed in terms of these rectangles.
    """

    partition: int
    layout: Layout
    bounds: Rect


def crossing_edge_length(
    edge: Edge,
    positions_a: dict[int, Point],
    positions_b: dict[int, Point],
) -> float:
    """Return the length of one crossing edge given both endpoints' positions.

    ``positions_a`` must contain the source or target and ``positions_b`` the
    other endpoint; the caller decides which partition holds which endpoint.
    """
    if edge.source in positions_a:
        start = positions_a[edge.source]
        end = positions_b[edge.target]
    else:
        start = positions_a[edge.target]
        end = positions_b[edge.source]
    return start.distance_to(end)


def placement_cost(
    candidate_layout: Layout,
    crossing_edges: list[Edge],
    placed_positions: dict[int, Point],
) -> float:
    """Total length of crossing edges between a candidate placement and the plane.

    Parameters
    ----------
    candidate_layout:
        The layout of the partition being placed, already translated to the
        candidate cell (global coordinates).
    crossing_edges:
        Edges with exactly one endpoint inside the candidate partition and one
        endpoint in some already placed partition.
    placed_positions:
        Global positions of every node already placed on the plane.

    Edges whose other endpoint has not been placed yet contribute an estimate
    based on the distance to the plane origin weighted low, so early placements
    are not dominated by unknown future positions.
    """
    total = 0.0
    for edge in crossing_edges:
        if edge.source in candidate_layout.positions:
            inside = candidate_layout.positions[edge.source]
            outside_id = edge.target
        else:
            inside = candidate_layout.positions[edge.target]
            outside_id = edge.source
        outside = placed_positions.get(outside_id)
        if outside is None:
            # Unplaced neighbour: small bias towards the centre of the plane.
            total += 0.1 * math.hypot(inside.x, inside.y)
            continue
        total += inside.distance_to(outside)
    return total

"""Greedy partition organizer (preprocessing Step 3).

Implements the algorithm of paper §II.A "Organizing Partitions":

1. count the crossing edges of every partition;
2. place the partition with the most crossing edges at the centre of the plane;
3. keep the remaining partitions in a priority queue ordered (descending) by the
   number of crossing edges they share with the partitions already on the plane;
4. repeatedly pop the head of the queue and assign it to the empty candidate
   cell that minimises the total length of its crossing edges to the partitions
   already placed, update node coordinates, re-order the queue, and repeat until
   the queue is empty.

The result is a single *global* layout in which partitions occupy disjoint
rectangles ("the distinct sub-graphs do not overlap on the plane") and tightly
connected partitions sit near each other.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import OrganizerError
from ..graph.model import Edge
from ..layout.base import Layout
from ..layout.scale import normalize_layout
from ..partition.base import PartitionResult
from ..spatial.geometry import Point, Rect
from .cost import PlacedPartition, placement_cost
from .spiral import CandidateGenerator

__all__ = ["GlobalLayout", "PartitionOrganizer"]


@dataclass
class GlobalLayout:
    """The merged layout of all partitions on the global plane.

    Attributes
    ----------
    layout:
        Global coordinates for every node of the input graph.
    placements:
        Per-partition placement records (cell rectangle + global layout).
    placement_order:
        The order in which partitions were placed (useful for debugging and for
        the organizer's unit tests).
    """

    layout: Layout
    placements: list[PlacedPartition] = field(default_factory=list)
    placement_order: list[int] = field(default_factory=list)

    def bounds(self) -> Rect:
        """Return the bounding rectangle of the whole drawing."""
        return self.layout.bounding_rect()

    def cell_of(self, partition: int) -> Rect:
        """Return the cell assigned to ``partition``."""
        for placement in self.placements:
            if placement.partition == partition:
                return placement.bounds
        raise OrganizerError(f"partition {partition} was never placed")

    def total_crossing_length(self, partition_result: PartitionResult) -> float:
        """Return the total length of crossing edges under the global layout."""
        total = 0.0
        for edge in partition_result.crossing_edges():
            total += self.layout.position(edge.source).distance_to(
                self.layout.position(edge.target)
            )
        return total


class PartitionOrganizer:
    """Greedy organizer placing partition layouts on the global plane.

    Parameters
    ----------
    padding:
        Margin added around each partition's bounding box to form its cell;
        guarantees visible separation between partitions.
    candidate_gap:
        Spacing between candidate cells considered at each step.
    max_candidates:
        Upper bound on the number of candidate cells evaluated per placement;
        the paper's efficiency argument relies on this area being small.
    """

    def __init__(
        self,
        padding: float = 40.0,
        candidate_gap: float = 20.0,
        max_candidates: int = 64,
    ) -> None:
        if padding < 0:
            raise OrganizerError("padding must be >= 0")
        if max_candidates < 1:
            raise OrganizerError("max_candidates must be >= 1")
        self.padding = padding
        self.max_candidates = max_candidates
        self._generator = CandidateGenerator(gap=candidate_gap)

    # ------------------------------------------------------------------ public

    def organize(
        self,
        partition_result: PartitionResult,
        partition_layouts: list[Layout],
    ) -> GlobalLayout:
        """Arrange the per-partition layouts on the global plane.

        ``partition_layouts[i]`` must be the layout of partition ``i`` in local
        coordinates (any origin; they are normalised internally).
        """
        k = partition_result.num_partitions
        if len(partition_layouts) != k:
            raise OrganizerError(
                f"expected {k} partition layouts, got {len(partition_layouts)}"
            )
        for partition, layout in enumerate(partition_layouts):
            members = set(partition_result.members(partition))
            missing = members - set(layout.positions)
            if missing:
                raise OrganizerError(
                    f"partition {partition} layout misses {len(missing)} nodes"
                )

        local_layouts = [normalize_layout(layout) for layout in partition_layouts]
        crossing_edges = partition_result.crossing_edges()
        crossing_by_partition = self._crossing_by_partition(partition_result, crossing_edges)
        crossing_matrix = partition_result.crossing_matrix()

        global_positions: dict[int, Point] = {}
        placements: list[PlacedPartition] = []
        placement_order: list[int] = []
        occupied: list[Rect] = []
        placed: set[int] = set()

        # Step 2 of the algorithm: the partition with the largest number of
        # crossing edges goes to the centre of the plane.
        first = max(range(k), key=lambda part: (len(crossing_by_partition[part]), -part))
        self._place(first, local_layouts[first], self._centered_cell(local_layouts[first]),
                    global_positions, placements, placement_order, occupied)
        placed.add(first)

        # Remaining partitions in a priority queue ordered by the number of
        # crossing edges shared with the already placed partitions (descending).
        queue: list[tuple[int, int, int]] = []
        sequence = 0
        for part in range(k):
            if part in placed:
                continue
            shared = self._shared_crossings(part, placed, crossing_matrix)
            heapq.heappush(queue, (-shared, sequence, part))
            sequence += 1

        while queue:
            _, __, part = heapq.heappop(queue)
            if part in placed:
                continue
            # Re-check priority: if the stored priority is stale (a better entry
            # exists after recent placements), push back with the fresh value.
            fresh = self._shared_crossings(part, placed, crossing_matrix)
            if queue and -queue[0][0] > fresh:
                heapq.heappush(queue, (-fresh, sequence, part))
                sequence += 1
                continue
            cell = self._best_cell(
                part, local_layouts[part], crossing_by_partition[part],
                global_positions, occupied,
            )
            self._place(part, local_layouts[part], cell,
                        global_positions, placements, placement_order, occupied)
            placed.add(part)

        return GlobalLayout(
            layout=Layout(global_positions),
            placements=placements,
            placement_order=placement_order,
        )

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def _crossing_by_partition(
        partition_result: PartitionResult, crossing_edges: list[Edge]
    ) -> list[list[Edge]]:
        by_partition: list[list[Edge]] = [[] for _ in range(partition_result.num_partitions)]
        for edge in crossing_edges:
            by_partition[partition_result.partition_of(edge.source)].append(edge)
            by_partition[partition_result.partition_of(edge.target)].append(edge)
        return by_partition

    @staticmethod
    def _shared_crossings(
        part: int, placed: set[int], crossing_matrix: list[list[int]]
    ) -> int:
        return sum(crossing_matrix[part][other] for other in placed)

    def _centered_cell(self, layout: Layout) -> Rect:
        rect = layout.bounding_rect().expanded(self.padding)
        # Centre the cell on the plane origin.
        return rect.translated(-rect.center.x, -rect.center.y)

    def _best_cell(
        self,
        part: int,
        layout: Layout,
        crossing_edges: list[Edge],
        global_positions: dict[int, Point],
        occupied: list[Rect],
    ) -> Rect:
        base_rect = layout.bounding_rect().expanded(self.padding)
        width = base_rect.width
        height = base_rect.height

        best_cell: Rect | None = None
        best_cost = float("inf")
        for count, candidate in enumerate(
            self._generator.candidates(occupied, width, height)
        ):
            if count >= self.max_candidates and best_cell is not None:
                break
            shifted = layout.translated(
                candidate.min_x + self.padding, candidate.min_y + self.padding
            )
            cost = placement_cost(shifted, crossing_edges, global_positions)
            if cost < best_cost:
                best_cost = cost
                best_cell = candidate
        if best_cell is None:
            raise OrganizerError(
                f"no non-overlapping cell found for partition {part}"
            )
        return best_cell

    def _place(
        self,
        part: int,
        layout: Layout,
        cell: Rect,
        global_positions: dict[int, Point],
        placements: list[PlacedPartition],
        placement_order: list[int],
        occupied: list[Rect],
    ) -> None:
        shifted = layout.translated(cell.min_x + self.padding, cell.min_y + self.padding)
        for node_id, point in shifted.positions.items():
            global_positions[node_id] = point
        placements.append(PlacedPartition(partition=part, layout=shifted, bounds=cell))
        placement_order.append(part)
        occupied.append(cell)

"""Candidate cell generation for the partition organizer.

The paper notes that the efficiency of the greedy placement "is guaranteed by
the small number of partitions (k), and also by the small size of the area we
have to check for the best assignment at each step; this area lies around the
non-empty areas from the previous steps."  :class:`CandidateGenerator` produces
exactly those candidate cells: positions ringing the already occupied region,
expanding outwards ring by ring until a non-overlapping cell is found.
"""

from __future__ import annotations

from typing import Iterator

from ..spatial.geometry import Rect

__all__ = ["CandidateGenerator"]


class CandidateGenerator:
    """Generate non-overlapping candidate cells around an occupied region.

    Parameters
    ----------
    gap:
        Minimum empty margin kept between neighbouring cells.
    """

    def __init__(self, gap: float = 20.0) -> None:
        if gap < 0:
            raise ValueError("gap must be >= 0")
        self.gap = gap

    def candidates(
        self,
        occupied: list[Rect],
        width: float,
        height: float,
        max_rings: int = 6,
    ) -> Iterator[Rect]:
        """Yield candidate cells of ``width x height`` that do not overlap ``occupied``.

        Candidates are generated ring by ring around the bounding box of the
        occupied region: ring 1 touches the occupied bounding box, ring 2 is one
        cell further out, and so on.  Within a ring, positions are ordered
        clockwise starting from the right edge so results are deterministic.
        """
        if not occupied:
            yield Rect(0.0, 0.0, width, height)
            return

        region = occupied[0]
        for rect in occupied[1:]:
            region = region.union(rect)
        region = region.expanded(self.gap)

        step_x = width + self.gap
        step_y = height + self.gap

        for ring in range(1, max_rings + 1):
            for candidate in self._ring(region, ring, width, height, step_x, step_y):
                if not any(candidate.expanded(self.gap / 2).intersects(rect) for rect in occupied):
                    yield candidate

    def _ring(
        self,
        region: Rect,
        ring: int,
        width: float,
        height: float,
        step_x: float,
        step_y: float,
    ) -> Iterator[Rect]:
        """Yield the cells of one ring around ``region`` (clockwise, deterministic)."""
        offset_x = region.max_x + self.gap + (ring - 1) * step_x
        offset_left = region.min_x - self.gap - width - (ring - 1) * step_x
        offset_top = region.max_y + self.gap + (ring - 1) * step_y
        offset_bottom = region.min_y - self.gap - height - (ring - 1) * step_y

        # Number of slots along each side grows with the ring index so the ring
        # covers the full extent of the occupied region plus the ring offset.
        horizontal_extent = region.width + 2 * ring * step_x
        vertical_extent = region.height + 2 * ring * step_y
        slots_x = max(1, int(horizontal_extent // step_x))
        slots_y = max(1, int(vertical_extent // step_y))

        # Right side (top to bottom).
        for slot in range(slots_y):
            y = region.min_y - ring * step_y + slot * step_y
            yield Rect(offset_x, y, offset_x + width, y + height)
        # Bottom side (right to left).
        for slot in range(slots_x):
            x = region.max_x + ring * step_x - slot * step_x - width
            yield Rect(x, offset_bottom, x + width, offset_bottom + height)
        # Left side (bottom to top).
        for slot in range(slots_y):
            y = region.max_y + ring * step_y - slot * step_y - height
            yield Rect(offset_left, y, offset_left + width, y + height)
        # Top side (left to right).
        for slot in range(slots_x):
            x = region.min_x - ring * step_x + slot * step_x
            yield Rect(x, offset_top, x + width, offset_top + height)

"""Partition organizer: greedy placement of partition layouts on the global plane."""

from .cost import PlacedPartition, crossing_edge_length, placement_cost
from .placement import GlobalLayout, PartitionOrganizer
from .quality import DrawingQuality, evaluate_drawing
from .spiral import CandidateGenerator

__all__ = [
    "PlacedPartition",
    "crossing_edge_length",
    "placement_cost",
    "GlobalLayout",
    "PartitionOrganizer",
    "DrawingQuality",
    "evaluate_drawing",
    "CandidateGenerator",
]

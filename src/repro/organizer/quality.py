"""Drawing-quality metrics for organized (global) layouts.

These metrics quantify what the organizer is trying to achieve — compact,
non-overlapping placement with short crossing edges — and are used by the
organizer's tests and by the partitioning/organizer ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..partition.base import PartitionResult
from .placement import GlobalLayout

__all__ = ["DrawingQuality", "evaluate_drawing"]


@dataclass(frozen=True)
class DrawingQuality:
    """Quality summary of one organized drawing.

    Attributes
    ----------
    total_crossing_length:
        Sum of Euclidean lengths of the crossing edges (the organizer's
        minimisation objective).
    mean_crossing_length:
        Average crossing-edge length (0 when there are no crossing edges).
    plane_utilisation:
        Fraction of the drawing's bounding-box area occupied by partition cells;
        low values mean the drawing wastes screen space.
    aspect_ratio:
        Width/height ratio of the drawing's bounding box (values near 1 suit a
        roughly square canvas).
    num_overlapping_cell_pairs:
        Number of partition-cell pairs with positive-area overlap; the
        organizer guarantees this is 0.
    """

    total_crossing_length: float
    mean_crossing_length: float
    plane_utilisation: float
    aspect_ratio: float
    num_overlapping_cell_pairs: int

    def as_dict(self) -> dict[str, float | int]:
        """Return a JSON-serialisable dictionary."""
        return {
            "total_crossing_length": self.total_crossing_length,
            "mean_crossing_length": self.mean_crossing_length,
            "plane_utilisation": self.plane_utilisation,
            "aspect_ratio": self.aspect_ratio,
            "num_overlapping_cell_pairs": self.num_overlapping_cell_pairs,
        }


def evaluate_drawing(
    global_layout: GlobalLayout, partition_result: PartitionResult
) -> DrawingQuality:
    """Compute the quality summary of one organized drawing."""
    crossing_edges = partition_result.crossing_edges()
    total_length = global_layout.total_crossing_length(partition_result)
    mean_length = total_length / len(crossing_edges) if crossing_edges else 0.0

    cells = [placement.bounds for placement in global_layout.placements]
    cell_area = sum(cell.area for cell in cells)
    bounds = global_layout.bounds()
    bounding_area = bounds.area
    utilisation = cell_area / bounding_area if bounding_area > 0 else 1.0

    width = bounds.width or 1.0
    height = bounds.height or 1.0
    aspect_ratio = width / height

    overlapping_pairs = 0
    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            overlap = cells[i].intersection(cells[j])
            if overlap is not None and overlap.area > 1e-9:
                overlapping_pairs += 1

    return DrawingQuality(
        total_crossing_length=total_length,
        mean_crossing_length=mean_length,
        plane_utilisation=min(utilisation, 1.0),
        aspect_ratio=aspect_ratio,
        num_overlapping_cell_pairs=overlapping_pairs,
    )

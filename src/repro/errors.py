"""Exception hierarchy for the graphVizdb reproduction.

All library errors derive from :class:`GraphVizDBError` so callers can catch a
single base class.  Subclasses are grouped by subsystem (graph model, partitioning,
layout, storage, query) which mirrors the package layout.
"""

from __future__ import annotations


class GraphVizDBError(Exception):
    """Base class for every error raised by this library."""


class GraphError(GraphVizDBError):
    """Errors raised by the graph data model (``repro.graph``)."""


class NodeNotFoundError(GraphError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} does not exist")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r} -> {target!r}) does not exist")
        self.source = source
        self.target = target


class DuplicateNodeError(GraphError):
    """An attempt was made to add a node id that already exists."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"node {node_id!r} already exists")
        self.node_id = node_id


class GraphFormatError(GraphError):
    """A graph file could not be parsed."""


class PartitioningError(GraphVizDBError):
    """Errors raised by the partitioning substrate (``repro.partition``)."""


class LayoutError(GraphVizDBError):
    """Errors raised by the layout substrate (``repro.layout``)."""


class UnknownLayoutError(LayoutError):
    """A layout algorithm name was not found in the registry."""

    def __init__(self, name: str, available: list[str]) -> None:
        super().__init__(
            f"unknown layout algorithm {name!r}; available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = list(available)


class OrganizerError(GraphVizDBError):
    """Errors raised by the partition organizer (``repro.organizer``)."""


class AbstractionError(GraphVizDBError):
    """Errors raised while building abstraction layers (``repro.abstraction``)."""


class SpatialIndexError(GraphVizDBError):
    """Errors raised by the spatial index substrate (``repro.spatial``)."""


class GeometryError(SpatialIndexError):
    """Invalid geometry (malformed rectangle, bad binary encoding, ...)."""


class StorageError(GraphVizDBError):
    """Errors raised by the storage engine (``repro.storage``)."""


class LayerNotFoundError(StorageError):
    """A requested abstraction layer does not exist in the database."""

    def __init__(self, layer: int) -> None:
        super().__init__(f"abstraction layer {layer} does not exist")
        self.layer = layer


class QueryError(GraphVizDBError):
    """Errors raised by the online query manager (``repro.core``)."""


class PipelineError(GraphVizDBError):
    """Errors raised by the offline preprocessing pipeline (``repro.core.pipeline``)."""


class ServiceError(GraphVizDBError):
    """Errors raised by the concurrent serving subsystem (``repro.service``)."""


class ServiceOverloadedError(ServiceError):
    """A dataset's admission limit was hit; the request was rejected, not queued.

    Clients should treat this like HTTP 503: back off and retry.  Rejecting at
    admission keeps queue depth (and therefore tail latency) bounded instead of
    letting one slow dataset absorb every worker thread.
    """

    def __init__(self, dataset: str, queue_depth: int, limit: int) -> None:
        super().__init__(
            f"dataset {dataset!r} is overloaded: {queue_depth} requests in flight "
            f"(admission limit {limit}); retry later"
        )
        self.dataset = dataset
        self.queue_depth = queue_depth
        self.limit = limit


class WriteError(ServiceError):
    """Errors raised by the durable write subsystem (``repro.writes``)."""


class JournalError(WriteError):
    """The write-ahead journal could not be appended to, replayed or truncated.

    Raised for I/O failures and for structurally corrupt journal files; a
    *torn tail* (a partially written final record after a crash) is not an
    error — replay stops at it, because everything before the tear was
    acknowledged with a complete record.

    ``io_fault`` marks failures of the journal's own I/O (failed write,
    fsync or truncation) as opposed to structural problems like an oversized
    record: an I/O fault means the durability of further appends is
    undefined, and the write coordinator responds by moving the dataset into
    fail-stop read-only mode.
    """

    def __init__(self, message: str, io_fault: bool = False) -> None:
        super().__init__(message)
        self.io_fault = io_fault


class DatasetReadOnlyError(WriteError):
    """The dataset is in fail-stop read-only degraded mode; writes are rejected.

    Entered when the dataset's journal hits an I/O fault (disk full, failed
    fsync, torn write): accepting further edits whose durability cannot be
    guaranteed would silently break the acknowledged-means-durable contract,
    so the coordinator rejects them loudly (HTTP 503) while reads continue.
    Cleared only by reopening the service over repaired storage.
    """

    def __init__(self, dataset: str, reason: str) -> None:
        super().__init__(
            f"dataset {dataset!r} is read-only (degraded): {reason}; "
            "reads continue, edits are rejected until storage is repaired"
        )
        self.dataset = dataset
        self.reason = reason


class UnknownEditError(WriteError):
    """An edit operation name was not recognised by the write subsystem."""

    def __init__(self, op: str, available: list[str]) -> None:
        super().__init__(
            f"unknown edit operation {op!r}; available: {', '.join(sorted(available))}"
        )
        self.op = op
        self.available = list(available)


class ClusterError(ServiceError):
    """Errors raised by the multi-process cluster subsystem (``repro.cluster``)."""


class WorkerUnavailableError(ClusterError):
    """A worker process could not be reached (crashed, draining, or timed out).

    The router treats this as a routing signal: mark the worker failed, retry
    the request on the dataset's next rendezvous owner, and let the supervisor
    restart the fleet member in the background.
    """

    def __init__(self, worker_id: str, reason: str) -> None:
        super().__init__(f"worker {worker_id!r} unavailable: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class ConfigurationError(GraphVizDBError):
    """Invalid configuration values."""

"""Ablation C — abstraction criteria: degree vs PageRank vs HITS vs merge.

The demo lets the user pick the abstraction criterion in the Layer Panel.  This
ablation builds the layer hierarchy of the Wikidata-like dataset with each
criterion and reports build time and per-layer sizes, plus the keyword-search
latency on layer 0 (exercising the trie the way the Search panel does).
"""

from __future__ import annotations

import time

from repro.abstraction.hierarchy import build_hierarchy
from repro.bench.reporting import format_comparison
from repro.config import AbstractionConfig
from repro.core.query_manager import QueryManager

CRITERIA = ("degree", "pagerank", "hits", "merge")


def test_abstraction_criteria_comparison(benchmark, wikidata_preprocessed, capsys):
    graph = wikidata_preprocessed.hierarchy.layer(0).graph
    layout = wikidata_preprocessed.global_layout.layout

    def build_with(criterion: str):
        return build_hierarchy(
            graph, layout, AbstractionConfig(num_layers=3, criterion=criterion)
        )

    # pytest-benchmark measures the default criterion (degree).
    degree_hierarchy = benchmark(lambda: build_with("degree"))

    results: dict[str, tuple[float, list[tuple[int, int]]]] = {}
    for criterion in CRITERIA:
        started = time.perf_counter()
        hierarchy = build_with(criterion)
        seconds = time.perf_counter() - started
        results[criterion] = (seconds, hierarchy.layer_sizes())

    with capsys.disabled():
        print()
        print("Ablation C — layer hierarchy by abstraction criterion (wikidata-like):")
        for criterion, (seconds, sizes) in results.items():
            rendered = " -> ".join(f"{nodes}n/{edges}e" for nodes, edges in sizes)
            print(f"  {criterion:<9}: {seconds * 1000:8.1f} ms   {rendered}")
        print(format_comparison(
            "every criterion produces a shrinking layer hierarchy",
            "multi-level exploration works with degree, PageRank and HITS",
            "all criteria shrink monotonically",
            all(
                all(sizes[i][0] > sizes[i + 1][0] for i in range(len(sizes) - 1))
                for _, sizes in results.values()
            ),
        ))

    # Every criterion must produce at least two layers and monotonically
    # shrinking node counts.
    for criterion, (_, sizes) in results.items():
        assert len(sizes) >= 2, f"{criterion} produced a single layer"
        node_counts = [nodes for nodes, _ in sizes]
        assert all(
            node_counts[i] > node_counts[i + 1] for i in range(len(node_counts) - 1)
        ), f"{criterion} layers do not shrink"
    assert degree_hierarchy.num_layers >= 2


def test_keyword_search_latency(benchmark, wikidata_preprocessed, capsys):
    """Search-panel latency: trie-backed keyword search on layer 0."""
    manager = QueryManager(wikidata_preprocessed.database)

    result = benchmark(lambda: manager.keyword_search("databases", layer=0, limit=20))

    with capsys.disabled():
        print()
        print(
            f"keyword search 'databases' on layer 0: {result.num_matches} matches, "
            f"{result.search_seconds * 1000:.2f} ms (server-side)"
        )

    assert result.num_matches >= 0
    assert result.search_seconds < 1.0

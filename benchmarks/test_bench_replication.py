"""Replication: replica-read capacity, staleness, and promotion latency.

Three questions PR 7's journal-streaming replicas must answer with numbers:

* **Do replicas add read capacity when the owner saturates?**  Eight HTTP
  clients hammer a *single* dataset with cache-miss window+payload reads
  against a deliberately tight worker (one handler thread, shallow admission
  queue), so the owner sheds load with 503s.  Owner-only routing
  (``replicas_per_dataset=0``) is the baseline; the same fleet with one
  replica subscribed turns those 503s into replica-served 200s.  The
  acceptance bar is replica-assisted successful throughput >= the owner-only
  baseline.
* **How stale are replica answers?**  Every replica-served response carries
  ``X-GVDB-Replica-Lag`` (records behind the owner's journal head at the
  last probe); the run records the observed lag distribution — the honest
  version of "bounded staleness".
* **How fast does promotion restore service?**  Kill the owner of a dataset
  whose replica is fully caught up: the router promotes the replica (feed
  drain + authoritative journal catch-up) and reads serve again.  Recovery
  must land within the crash-recovery budget, and the router's measured
  promotion latency is recorded alongside.

Measurements append to ``BENCH_replication.json`` at the repository root,
building a trajectory across PRs.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_comparison
from repro.cluster.router import ClusterRuntime
from repro.config import ClusterConfig, GraphVizDBConfig, ServiceConfig
from repro.core.query_manager import QueryManager
from repro.storage.sqlite_backend import save_to_sqlite

#: Where the replication trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_replication.json"

#: Concurrent HTTP client threads (all aimed at one dataset).
NUM_CLIENTS = 8

#: Requests each client issues in a timed run.
REQUESTS_PER_CLIENT = 12

#: Distinct windows in the tour — distinct targets defeat the router cache
#: (which is disabled anyway) and the worker-side coalescer.
NUM_WINDOWS = 12

#: Supervision cadence; the promotion measurement is judged against it.
HEALTH_INTERVAL_SECONDS = 0.5


def record_trajectory(measurements: dict) -> None:
    """Append one measurement entry to the BENCH_replication.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": "patent-like-x2",
        "cpu_count": os.cpu_count(),
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture()
def replication_shards(patent_preprocessed, tmp_path):
    """Two fresh shards (writes and promotions must not leak across tests)."""
    paths: dict[str, str] = {}
    for index in range(2):
        path = tmp_path / f"shard{index}.db"
        save_to_sqlite(patent_preprocessed.database, path)
        paths[f"shard{index}"] = str(path)
    manager = QueryManager(patent_preprocessed.database)
    window = manager.default_viewport().window()
    # Small tiles (1/6 of the viewport per side): the benchmark measures
    # queueing under a shallow admission queue, so per-request payload cost
    # must stay modest at every REPRO_BENCH_SCALE — full-viewport payloads
    # at larger scales turn the whole run CPU-bound on small machines, and
    # a replica cannot add capacity to an already-saturated single core.
    tile_width = window.width / 6
    tile_height = window.height / 6
    targets = []
    for index in range(NUM_WINDOWS):
        min_x = window.min_x + (index % 4) * tile_width
        min_y = window.min_y + (index // 4) * tile_height
        targets.append(
            "/window?dataset=shard0&payload=1"
            f"&min_x={min_x:.3f}&min_y={min_y:.3f}"
            f"&max_x={min_x + tile_width:.3f}&max_y={min_y + tile_height:.3f}"
        )
    return paths, targets


def _config(replicas: int) -> GraphVizDBConfig:
    """A deliberately tight fleet: the owner saturates under 8 clients.

    Three executor threads per worker, not one: each feed subscription's
    bounded long-poll parks an executor thread on the owner (two datasets =
    up to two parked threads), and the benchmark is about read capacity,
    not about starving the owner of every serving thread.
    """
    return GraphVizDBConfig(
        service=ServiceConfig(max_queue_depth=1, coalesce_max_batch=1),
        cluster=ClusterConfig(
            num_workers=2,
            worker_threads=3,
            cache_capacity=0,            # every read is a cache miss
            health_interval_seconds=HEALTH_INTERVAL_SECONDS,
            replicas_per_dataset=replicas,
            replica_max_lag_records=256,
        ),
    )


def _drive(port: int, targets: list[str]):
    """Each client completes its tour, retrying every item until it gets a 200.

    Fixed successful work per run (NUM_CLIENTS x REQUESTS_PER_CLIENT reads),
    so the two deployments are compared on how fast they *complete* the
    workload — shed 503s cost retries, extra serving capacity pays.  Returns
    ``(elapsed_seconds, attempts, replica_lags)`` where ``replica_lags``
    holds the ``X-GVDB-Replica-Lag`` of every replica-served response (the
    observed staleness distribution).
    """
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    lock = threading.Lock()
    attempts = [0]
    replica_lags: list[int] = []
    errors: list[object] = []

    def client(seed: int) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            barrier.wait()
            for index in range(REQUESTS_PER_CLIENT):
                target = targets[(seed * 7 + index) % len(targets)]
                while True:
                    # A per-client tag keeps concurrent requests distinct so
                    # the worker-side coalescer cannot merge them.
                    connection.request("GET", f"{target}&_client={seed}")
                    response = connection.getresponse()
                    response.read()
                    lag = response.getheader("X-GVDB-Replica-Lag")
                    with lock:
                        attempts[0] += 1
                        if lag is not None:
                            replica_lags.append(int(lag))
                    if response.status == 200:
                        break
                    # A shed 503 costs the client a real backoff before it
                    # retries — the server's own Retry-After suggests 1-3
                    # *seconds*; 100ms models a client honouring a tenth of
                    # that.  This is the dynamic replica serving removes:
                    # a shed read is throughput lost to politeness, a
                    # replica-served read is throughput kept.
                    time.sleep(0.1)
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:3]
    return elapsed, attempts[0], replica_lags


def _wait_for_subscription(runtime, dataset: str, seconds: float = 20.0):
    """Block until some worker reports a feed watermark for ``dataset``."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        marks = runtime.health_summary()["replication"]["watermarks"]
        for statuses in marks.values():
            status = statuses.get(dataset)
            if isinstance(status, dict) and "applied_seq" in status:
                return status
        time.sleep(0.05)
    return None


def test_replica_reads_add_capacity_under_owner_saturation(
    replication_shards, capsys
):
    """Replica-assisted throughput must be >= the owner-only baseline."""
    paths, targets = replication_shards
    successes = NUM_CLIENTS * REQUESTS_PER_CLIENT

    # Two passes per deployment, best-of: the first doubles as the warmup
    # (pool opens, connection setup), and best-of damps scheduler noise on
    # small CI machines.
    with ClusterRuntime(paths, config=_config(replicas=0)) as runtime:
        runs = [_drive(runtime.port, targets) for _ in range(2)]
    elapsed, owner_attempts, _ = min(runs, key=lambda run: run[0])
    owner_rps = successes / elapsed
    owner_shed = owner_attempts - successes

    lags: list[int] = []
    with ClusterRuntime(paths, config=_config(replicas=1)) as runtime:
        assert _wait_for_subscription(runtime, "shard0") is not None
        runs = [_drive(runtime.port, targets) for _ in range(2)]
        replica_reads = runtime.router.metrics.replica_reads
    for _, _, run_lags in runs:
        lags.extend(run_lags)
    elapsed, assisted_attempts, _ = min(runs, key=lambda run: run[0])
    assisted_rps = successes / elapsed
    assisted_shed = assisted_attempts - successes

    lag_histogram: dict[str, int] = {}
    for lag in lags:
        lag_histogram[str(lag)] = lag_histogram.get(str(lag), 0) + 1

    record_trajectory({
        "kind": "replica_read_capacity",
        "clients": NUM_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "owner_only_rps": owner_rps,
        "owner_only_shed": owner_shed,
        "replica_assisted_rps": assisted_rps,
        "replica_assisted_shed": assisted_shed,
        "replica_reads": replica_reads,
        "staleness_histogram_records": lag_histogram,
    })
    with capsys.disabled():
        print()
        print(
            f"Replica read capacity ({NUM_CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} cache-miss window reads on one dataset, "
            f"{os.cpu_count()} CPUs):"
        )
        print(
            f"  owner only      : {owner_rps:7.0f} ok/s "
            f"({owner_shed} shed with 503)"
        )
        print(
            f"  +1 replica      : {assisted_rps:7.0f} ok/s "
            f"({assisted_shed} shed, {replica_reads} replica-served)"
        )
        print(f"  staleness (records behind head): {lag_histogram or '{}'}")
        print(format_comparison(
            "journal-streaming replicas under owner saturation",
            "PR 7 target: replica-assisted throughput >= owner-only baseline "
            "on cache-miss reads",
            f"{assisted_rps:.0f} vs {owner_rps:.0f} ok/s",
            assisted_rps >= owner_rps,
        ))
    assert assisted_rps >= owner_rps * 0.95, (
        f"replica-assisted {assisted_rps:.0f} ok/s fell below the owner-only "
        f"baseline {owner_rps:.0f} ok/s"
    )


def test_promotion_latency_within_recovery_budget(replication_shards, capsys):
    """After an owner SIGKILL, the promoted replica serves within budget."""
    paths, _ = replication_shards
    config = _config(replicas=1)
    with ClusterRuntime(paths, config=config) as runtime:
        port = runtime.port
        # A few durable writes give the replica something real to stream.
        for n in range(5):
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                connection.request(
                    "POST", "/edit/add_node?dataset=shard0",
                    body=json.dumps({
                        "node_id": 880500 + n, "label": f"bench-promo-{n}",
                        "x": 105.0, "y": 105.0 + n,
                    }).encode(),
                )
                response = connection.getresponse()
                assert response.status == 200, response.read()[:200]
                response.read()
            finally:
                connection.close()
        owner = runtime.health_summary()["assignment"]["shard0"]

        # Wait until the replica is fully caught up (lag 0 at seq 5).
        deadline = time.monotonic() + 20.0
        caught_up = False
        while time.monotonic() < deadline:
            marks = runtime.health_summary()["replication"]["watermarks"]
            for worker_id, statuses in marks.items():
                status = statuses.get("shard0")
                if (
                    worker_id != owner
                    and isinstance(status, dict)
                    and int(status.get("applied_seq", 0)) >= 5
                ):
                    caught_up = True
            if caught_up:
                break
            time.sleep(0.05)
        assert caught_up, "replica never caught up to the journal head"

        # Warm every worker's keyword path for the dataset: the first
        # /keyword on a worker builds the label index, a one-time serving
        # cost that exists with or without failover (hundreds of ms at
        # larger scales).  Leaving it inside the timed window would measure
        # index construction, not promotion.
        for handle in runtime.router._handles.values():
            connection = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=30
            )
            try:
                connection.request("GET", "/keyword?dataset=shard0&q=bench-promo-0")
                connection.getresponse().read()
            finally:
                connection.close()

        runtime.router._handles[owner].process.kill()
        killed_at = time.perf_counter()
        recovery_seconds = None
        deadline = killed_at + 30.0
        while time.perf_counter() < deadline:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                connection.request("GET", "/keyword?dataset=shard0&q=bench-promo-4")
                response = connection.getresponse()
                body = response.read()
                if response.status == 200:
                    decoded = json.loads(body)
                    if decoded.get("num_matches") == 1:
                        recovery_seconds = time.perf_counter() - killed_at
                        break
            except OSError:
                pass
            finally:
                connection.close()
            time.sleep(0.01)
        assert recovery_seconds is not None, "shard0 never recovered"
        promotions = runtime.router.metrics.promotions
        promotion_ms = runtime.router.metrics.last_promotion_ms

    budget_seconds = 2 * HEALTH_INTERVAL_SECONDS
    record_trajectory({
        "kind": "promotion",
        "recovery_ms": recovery_seconds * 1000,
        "promotion_ms": promotion_ms if promotions else None,
        "promotions": promotions,
        "health_interval_ms": HEALTH_INTERVAL_SECONDS * 1000,
        "budget_ms": budget_seconds * 1000,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "owner promotion after SIGKILL",
            "PR 7 target: promoted replica serves reads (all acked writes "
            f"present) within {budget_seconds * 1000:.0f} ms",
            f"recovered in {recovery_seconds * 1000:.0f} ms"
            + (
                f", promotion round trip {promotion_ms:.0f} ms"
                if promotions else ""
            ),
            recovery_seconds <= budget_seconds,
        ))
    assert recovery_seconds <= budget_seconds, (
        f"promotion recovery took {recovery_seconds * 1000:.0f} ms "
        f"(> {budget_seconds * 1000:.0f} ms budget)"
    )

"""Trace-driven SLO bench: tail latency under a realistic mixed workload.

The earlier benches drive uniform request loops; this one replays the PR 9
loadgen trace — zipfian dataset popularity, pan/zoom random walks, keyword
bursts, kNN hotspot probes and a write trickle across >= 200 concurrent
exploration sessions — against a live 2-worker cluster router, twice:

* **fixed** — the PR 3 admission control: a static per-dataset queue-depth
  limit, whatever the current p99 looks like;
* **adaptive** — the AIMD controller of :class:`repro.slo.AdaptiveAdmission`
  on each worker, cutting the effective limit while the ``window`` op burns
  error budget (its p99 sits above target) and recovering additively.

Both runs replay the *identical* seeded trace (determinism is asserted by
``tests/test_slo.py``), so their per-op p50/p95/p99, 503/504 rates and
achieved QPS are directly comparable; both land in ``BENCH_slo.json``
together with the router's SLO accounting and the keyword/kNN cache hit
counters (the zipfian repeats must make both nonzero — asserted here).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cluster.router import ClusterRuntime
from repro.config import ClusterConfig, GraphVizDBConfig, SLOConfig, ServiceConfig
from repro.slo.loadgen import LoadgenConfig, generate_trace, run_trace
from repro.storage.sqlite_backend import save_to_sqlite

#: Where the SLO trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_slo.json"

#: Dataset shards behind the router (zipfian popularity across them).
NUM_SHARDS = 2

#: Exploration sessions in the trace — the acceptance floor is 200.
NUM_SESSIONS = 200

#: Concurrent client threads replaying sessions.
CONCURRENCY = 8

#: Queue-depth ceiling per worker: low enough that the mixed workload can
#: actually queue, so the two admission policies are distinguishable.
MAX_QUEUE_DEPTH = 16


def record_trajectory(measurements: dict) -> None:
    """Append one measurement entry to the BENCH_slo.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": f"patent-like-x{NUM_SHARDS}",
        "cpu_count": os.cpu_count(),
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def slo_shards(patent_preprocessed, tmp_path_factory):
    """``name -> path`` of the shard files served by the router under test."""
    base = tmp_path_factory.mktemp("slo-bench")
    paths: dict[str, str] = {}
    for index in range(NUM_SHARDS):
        path = base / f"shard{index}.db"
        save_to_sqlite(patent_preprocessed.database, path)
        paths[f"shard{index}"] = str(path)
    return paths


def _slo_config(adaptive: bool) -> SLOConfig:
    """SLO targets shared by both runs; small windows so the controller and
    the burn accounting react within a seconds-long bench run."""
    return SLOConfig(
        fast_burn_window_seconds=2.0,
        slow_burn_window_seconds=20.0,
        adaptive_admission=adaptive,
        admission_min_queue_depth=2,
        admission_interval_seconds=0.25,
        admission_burn_window_seconds=2.0,
    )


def _cluster_config(adaptive: bool) -> GraphVizDBConfig:
    return GraphVizDBConfig(
        cluster=ClusterConfig(
            num_workers=2,
            cache_capacity=1024,
            health_interval_seconds=0.5,
        ),
        service=ServiceConfig(
            pool_capacity=max(4, NUM_SHARDS),
            max_queue_depth=MAX_QUEUE_DEPTH,
        ),
        slo=_slo_config(adaptive),
    )


def _run_once(paths: dict, trace, loadgen_config: LoadgenConfig, adaptive: bool):
    """Replay the trace against a fresh router; return (report, slo, cluster)."""
    with ClusterRuntime(paths, config=_cluster_config(adaptive)) as runtime:
        report = run_trace("127.0.0.1", runtime.port, trace, loadgen_config)
        merged = runtime.metrics_summary()
        slo_section = merged.get("slo", {})
        cluster_section = merged.get("cluster", {})
    return report, slo_section, cluster_section


def test_mixed_workload_slo_fixed_vs_adaptive(slo_shards, capsys):
    """>= 200-session seeded workload, fixed vs adaptive admission, recorded.

    Both runs replay the identical trace; the report captures per-op
    p50/p95/p99 + 503/504 rates for each so the trajectory shows whether
    the AIMD controller holds the window p99 nearer its target than the
    fixed queue-depth limit under the same offered load.  The zipfian
    keyword/kNN repeats must earn nonzero result-cache hits.
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    loadgen_config = LoadgenConfig(
        sessions=NUM_SESSIONS,
        ops_per_session=max(4, int(12 * scale)),
        concurrency=CONCURRENCY,
        seed=42,
    )
    trace = generate_trace(sorted(slo_shards), loadgen_config)
    total_ops = sum(len(session) for session in trace)
    window_target_ms = (
        dict(_slo_config(False).latency_targets)["window"] * 1000.0
    )

    fixed_report, fixed_slo, fixed_cluster = _run_once(
        slo_shards, trace, loadgen_config, adaptive=False
    )
    adaptive_report, adaptive_slo, adaptive_cluster = _run_once(
        slo_shards, trace, loadgen_config, adaptive=True
    )

    # The zipfian repeats must make keyword/kNN caching earn its keep.
    for cluster_section in (fixed_cluster, adaptive_cluster):
        assert cluster_section.get("keyword_cache_hits", 0) > 0
        assert cluster_section.get("nearest_cache_hits", 0) > 0

    # The fixed run must execute the full trace; the adaptive run may shed
    # load (a 503 on /session/new skips that session's stateful ops — the
    # controller trading completed ops for tail latency), never grow it.
    assert fixed_report.ops == total_ops
    assert 0 < adaptive_report.ops <= total_ops

    measurements = {
        "kind": "slo-loadgen",
        "sessions": NUM_SESSIONS,
        "ops_per_session": loadgen_config.ops_per_session,
        "concurrency": CONCURRENCY,
        "seed": loadgen_config.seed,
        "total_ops": total_ops,
        "max_queue_depth": MAX_QUEUE_DEPTH,
        "window_p99_target_ms": window_target_ms,
        "fixed": fixed_report.to_dict(),
        "fixed_slo": fixed_slo,
        "fixed_keyword_cache_hits": fixed_cluster.get("keyword_cache_hits", 0),
        "fixed_nearest_cache_hits": fixed_cluster.get("nearest_cache_hits", 0),
        "adaptive": adaptive_report.to_dict(),
        "adaptive_slo": adaptive_slo,
        "adaptive_keyword_cache_hits": adaptive_cluster.get(
            "keyword_cache_hits", 0
        ),
        "adaptive_nearest_cache_hits": adaptive_cluster.get(
            "nearest_cache_hits", 0
        ),
    }
    record_trajectory(measurements)

    with capsys.disabled():
        print()
        print(
            f"SLO loadgen ({NUM_SESSIONS} sessions x "
            f"{loadgen_config.ops_per_session} steps, {CONCURRENCY} clients, "
            f"{os.cpu_count()} CPUs, window target {window_target_ms:.0f} ms):"
        )
        for label, report in (("fixed", fixed_report), ("adaptive", adaptive_report)):
            window = report.per_op.get("window", {})
            print(
                f"  {label:<8}: {report.qps:7.0f} op/s  "
                f"window p99 {window.get('p99_ms', 0.0):8.1f} ms  "
                f"503s {report.errors_503:4d}  504s {report.errors_504:4d}"
            )

"""Figure 3(b) — Time vs Window Size, Patent-like dataset.

Same sweep as Fig. 3(a) on the citation graph.  The paper's Patent panel shows
the same qualitative behaviour as Wikidata but with more objects per window
(denser drawing), hence slightly higher totals; the assertions below check the
shared shape plus the roughly linear relation between objects and total time.
"""

from __future__ import annotations

from repro.bench.reporting import format_comparison, format_figure3
from repro.bench.runner import run_figure3
from repro.bench.workloads import PAPER_WINDOW_SIZES

QUERIES_PER_SIZE = 100


def test_figure3_patent(benchmark, patent_preprocessed, capsys):
    series = benchmark.pedantic(
        run_figure3,
        kwargs={
            "preprocessing": patent_preprocessed,
            "dataset_name": "patent-like",
            "window_sizes": PAPER_WINDOW_SIZES,
            "queries_per_size": QUERIES_PER_SIZE,
        },
        rounds=1,
        iterations=1,
    )

    totals = series.series("total_ms")
    rendering = series.series("communication_rendering_ms")
    db = series.series("db_query_ms")
    json_build = series.series("json_build_ms")
    objects = series.series("avg_objects")

    with capsys.disabled():
        print()
        print(format_figure3(series))
        print()
        print(format_comparison(
            "behaviour matches the Wikidata panel (linear scaling, rendering dominates)",
            "Fig. 3(a) and 3(b) show the same shape",
            f"total {totals[0]:.1f} -> {totals[-1]:.1f}ms, objects {objects[0]:.0f} -> {objects[-1]:.0f}",
            totals[-1] > totals[0] and rendering[-1] > db[-1],
        ))
        # Linearity check: time per object should be roughly constant across sizes.
        per_object = [t / max(o, 1.0) for t, o in zip(totals, objects)]
        print(format_comparison(
            "total time scales linearly with objects in the window",
            "linear in Fig. 3",
            f"ms/object across sizes: {', '.join(f'{v:.2f}' for v in per_object)}",
            max(per_object) <= 5.0 * min(per_object),
        ))

    assert objects == sorted(objects), "objects should not shrink as windows grow"
    assert totals[-1] > totals[0]
    assert rendering[-1] >= 0.5 * totals[-1]
    assert db[-1] <= 0.5 * totals[-1]
    assert json_build[-1] < rendering[-1]
    # Approximate linearity between objects and total time across the sweep.
    per_object = [t / max(o, 1.0) for t, o in zip(totals, objects)]
    assert max(per_object) <= 5.0 * min(per_object)

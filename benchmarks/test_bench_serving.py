"""Serving under concurrency: coalesced dispatch, pool opens, background repack.

Three questions the new serving subsystem must answer with numbers:

* **Does coalescing pay off?**  N client threads replay the same guided pan
  path over the layer-0 drawing (the popular-region pattern: every new client
  starts at the default viewport and follows the tour).  Serial dispatch
  evaluates every request individually on one thread; the service coalesces
  the concurrent bursts through
  :meth:`~repro.storage.table.LayerTable.window_query_batch` and deduplicates
  identical windows inside a batch.  The acceptance bar is a coalesced win at
  >= 8 clients.
* **Does the pool make multi-dataset serving cheap?**  A warm
  :meth:`~repro.service.pool.DatasetPool.get` must beat a cold
  ``load_from_sqlite`` open by a wide margin (it is a dict hit).
* **Does background maintenance close the repack loop?**  After Edit-panel
  mutations demote layer 0, the maintenance scheduler must restore the packed
  index — observed via ``storage_summary()`` — without anyone calling
  ``repack()``.

Measurements append to ``BENCH_serving.json`` at the repository root,
building a trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.bench.reporting import format_comparison
from repro.config import GraphVizDBConfig, ServiceConfig, StorageConfig
from repro.core.editing import GraphEditor
from repro.core.query_manager import QueryManager
from repro.service.frontend import GraphVizDBService, ServiceRuntime
from repro.service.pool import DatasetPool
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite

#: Where the serving trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

#: Client-thread counts compared against serial dispatch.
CLIENT_COUNTS = (2, 8)

#: Window queries each client issues.
REQUESTS_PER_CLIENT = 12

#: Distinct windows along the shared pan path.
NUM_WINDOWS = 8

#: Timed pool/cold opens; the minimum is reported.
OPEN_REPEATS = 3

#: Repeats per dispatch measurement (best-of, to shed scheduler noise at
#: small smoke scales where a whole run is a few milliseconds).
DISPATCH_REPEATS = 3


def record_trajectory(dataset: str, measurements: dict) -> None:
    """Append one dataset's measurements to the BENCH_serving.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": dataset,
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _pan_path(manager: QueryManager) -> list:
    """The windows of the shared exploration tour (every client replays it)."""
    base = manager.default_viewport().window()
    step = base.width / 3
    return [
        base.translated((index % 4) * step, (index // 4) * step)
        for index in range(NUM_WINDOWS)
    ]


def _run_serial(manager: QueryManager, windows: list, total_requests: int) -> float:
    """Dispatch the whole workload one request at a time (the seed behaviour)."""
    started = time.perf_counter()
    for index in range(total_requests):
        manager.window_query(windows[index % len(windows)])
    return time.perf_counter() - started


def _run_concurrent(
    runtime: ServiceRuntime, dataset: str, windows: list, num_clients: int
) -> float:
    """N client threads replay the tour through the coalescing front-end."""
    barrier = threading.Barrier(num_clients + 1)
    errors: list[Exception] = []

    def client() -> None:
        try:
            barrier.wait()
            for index in range(REQUESTS_PER_CLIENT):
                runtime.window_query(dataset, windows[index % len(windows)])
        except Exception as exc:  # pragma: no cover - surfaced via assert below
            errors.append(exc)

    threads = [threading.Thread(target=client) for _ in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


def _concurrent_run(
    database, windows, num_clients: int, coalesce: bool
) -> tuple[float, dict]:
    """One concurrent measurement with its own service instance.

    ``coalesce_max_batch`` is sized to the client count — the deployment
    guidance this benchmark encodes: a full concurrent burst then flushes the
    moment its last member arrives instead of waiting out the timer, and the
    timer only matters for stragglers.
    """
    service_config = ServiceConfig(
        coalesce_window_seconds=0.001,
        coalesce_max_batch=num_clients if coalesce else 1,
    )
    service = GraphVizDBService(GraphVizDBConfig(service=service_config))
    service.register_dataset("patent-like", database)
    with ServiceRuntime(service) as runtime:
        runtime.window_query("patent-like", windows[0])  # warm the loop path
        elapsed = min(
            _run_concurrent(runtime, "patent-like", windows, num_clients)
            for _ in range(DISPATCH_REPEATS)
        )
        return elapsed, runtime.metrics_summary()["coalescer"]


def test_coalesced_vs_serial_dispatch(patent_preprocessed, capsys):
    """Coalesced concurrent window queries must beat serial dispatch at 8 clients."""
    database = patent_preprocessed.database
    manager = QueryManager(database)
    windows = _pan_path(manager)

    # Warm both pipelines (row/fragment caches are shared via the table), so
    # the comparison measures dispatch strategy, not first-touch cache fills.
    for window in windows:
        manager.window_query(window)

    measurements: dict[str, object] = {}
    for num_clients in CLIENT_COUNTS:
        total = num_clients * REQUESTS_PER_CLIENT
        serial_seconds = min(
            _run_serial(manager, windows, total) for _ in range(DISPATCH_REPEATS)
        )
        concurrent_seconds, coalescer = _concurrent_run(
            database, windows, num_clients, coalesce=True
        )
        uncoalesced_seconds, _ = _concurrent_run(
            database, windows, num_clients, coalesce=False
        )
        measurements[f"serial_{num_clients}c_ms"] = serial_seconds * 1000
        measurements[f"coalesced_{num_clients}c_ms"] = concurrent_seconds * 1000
        measurements[f"uncoalesced_{num_clients}c_ms"] = uncoalesced_seconds * 1000
        measurements[f"speedup_{num_clients}c"] = (
            serial_seconds / max(concurrent_seconds, 1e-9)
        )
        measurements[f"throughput_{num_clients}c_rps"] = total / max(
            concurrent_seconds, 1e-9
        )
        measurements[f"coalesce_ratio_{num_clients}c"] = coalescer["ratio"]
    measurements["coalesce_ratio"] = measurements[
        f"coalesce_ratio_{CLIENT_COUNTS[-1]}c"
    ]
    record_trajectory("patent-like", {"kind": "dispatch", **measurements})

    speedup = measurements["speedup_8c"]
    with capsys.disabled():
        print()
        print(f"Dispatch on patent-like ({REQUESTS_PER_CLIENT} requests/client):")
        for num_clients in CLIENT_COUNTS:
            print(
                f"  {num_clients} clients: serial "
                f"{measurements[f'serial_{num_clients}c_ms']:8.1f} ms | coalesced "
                f"{measurements[f'coalesced_{num_clients}c_ms']:8.1f} ms | "
                f"uncoalesced {measurements[f'uncoalesced_{num_clients}c_ms']:8.1f} ms | "
                f"{measurements[f'speedup_{num_clients}c']:.1f}x | "
                f"{measurements[f'throughput_{num_clients}c_rps']:7.0f} req/s"
            )
        print(format_comparison(
            "window-batch coalescing under concurrency",
            "ISSUE 3 target: coalesced beats serial dispatch at >= 8 clients",
            f"speedup at 8 clients: {speedup:.1f}x "
            f"(coalesce ratio {measurements['coalesce_ratio']:.1f})",
            speedup > 1.0,
        ))
    assert speedup > 1.0, (
        f"coalesced dispatch slower than serial at 8 clients ({speedup:.2f}x)"
    )


def test_pool_warm_open_vs_cold_load(patent_preprocessed, tmp_path, capsys):
    """A pool-warm open must beat a cold ``load_from_sqlite`` open."""
    path = tmp_path / "patent-pool.db"
    save_to_sqlite(patent_preprocessed.database, path)

    cold_seconds = float("inf")
    for _ in range(OPEN_REPEATS):
        started = time.perf_counter()
        load_from_sqlite(path, config=StorageConfig())
        cold_seconds = min(cold_seconds, time.perf_counter() - started)

    pool = DatasetPool(capacity=2)
    pool.get(path)  # the one cold open the pool ever pays
    warm_seconds = float("inf")
    for _ in range(OPEN_REPEATS):
        started = time.perf_counter()
        entry = pool.get(path)
        warm_seconds = min(warm_seconds, time.perf_counter() - started)
    assert entry.database.num_layers == patent_preprocessed.database.num_layers

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    record_trajectory("patent-like", {
        "kind": "pool_open",
        "cold_open_ms": cold_seconds * 1000,
        "warm_open_ms": warm_seconds * 1000,
        "speedup": speedup,
    })
    with capsys.disabled():
        print()
        print(f"Pool open on patent-like ({path.stat().st_size / 1024:.0f} KiB):")
        print(f"  cold load_from_sqlite : {cold_seconds * 1000:10.3f} ms")
        print(f"  pool-warm get         : {warm_seconds * 1000:10.3f} ms")
        print(format_comparison(
            "dataset pool makes re-opens free",
            "ISSUE 3 target: warm open beats cold load_from_sqlite",
            f"speedup: {speedup:.0f}x",
            warm_seconds < cold_seconds,
        ))
    assert warm_seconds < cold_seconds


def test_background_repack_restores_packed_index(
    patent_preprocessed, tmp_path, capsys
):
    """Maintenance must repack a demoted layer with no explicit repack() call."""
    path = tmp_path / "patent-repack.db"
    save_to_sqlite(patent_preprocessed.database, path)
    database = load_from_sqlite(path)

    service = GraphVizDBService(GraphVizDBConfig(service=ServiceConfig(
        repack_edit_threshold=1,
        repack_quiescence_seconds=0.05,
        maintenance_interval_seconds=0.02,
    )))
    service.register_dataset("patent-like", database)
    with ServiceRuntime(service):
        editor = GraphEditor(database, layer=0)
        row = next(iter(database.table(0).scan()))
        editor.rename_node(row.node1_id, "BackgroundRepackProbe")
        summary = database.storage_summary()
        assert summary["layers"][0]["index"] == "rtree"  # edits demoted layer 0

        started = time.perf_counter()
        deadline = started + 30.0
        while time.perf_counter() < deadline:
            summary = database.storage_summary()
            if summary["layers"][0]["index"] == "packed":
                break
            time.sleep(0.02)
        repack_latency = time.perf_counter() - started

    summary = database.storage_summary()
    assert summary["layers"][0]["index"] == "packed", (
        "maintenance never repacked layer 0"
    )
    assert database.table(0).edits_since_repack == 0
    assert service.metrics.repack_runs >= 1
    record_trajectory("patent-like", {
        "kind": "background_repack",
        "repack_latency_ms": repack_latency * 1000,
        "repack_runs": service.metrics.repack_runs,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "background repack closes the demote loop",
            "ISSUE 3 target: packed index restored without an explicit repack()",
            f"restored in {repack_latency * 1000:.0f} ms after quiescence",
            True,
        ))

"""Ablation B — partition-based preprocessing vs the holistic baseline.

The paper motivates the partition-based layout with the memory requirements of
whole-graph ("holistic") tools and argues the indexed database keeps query cost
independent of graph size.  This ablation measures, on growing Patent-like
graphs:

* window-query latency via the indexed database vs a linear scan over the
  whole in-memory graph (the holistic access path);
* the partitioning quality gap between the multilevel partitioner and the
  random/hash baselines (fewer crossing edges → shorter crossing edges after
  the organizer runs).
"""

from __future__ import annotations

import time

from repro.baselines.holistic import HolisticVisualizer
from repro.bench.reporting import format_comparison
from repro.bench.workloads import random_windows
from repro.graph.generators import community_graph
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.simple import RandomPartitioner

WINDOW_SIZE = 1200
NUM_WINDOWS = 30


def test_window_query_indexed_vs_holistic(benchmark, patent_preprocessed, capsys):
    database = patent_preprocessed.database
    graph = patent_preprocessed.hierarchy.layer(0).graph
    layout = patent_preprocessed.global_layout.layout
    table = database.table(0)
    holistic = HolisticVisualizer(graph, layout=layout)
    windows = random_windows(database.bounds(0), WINDOW_SIZE, count=NUM_WINDOWS, seed=23)

    def indexed_workload() -> int:
        # The "DB Query Execution" path of Fig. 3: R-tree lookup plus exact
        # segment filtering; JSON building and streaming are excluded on both
        # sides of the comparison.
        return sum(len(table.window_query(window)) for window in windows)

    indexed_objects = benchmark(indexed_workload)

    started = time.perf_counter()
    indexed_workload()
    indexed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    holistic_objects = sum(
        len(holistic.window_query(window).edges) for window in windows
    )
    holistic_seconds = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(
            f"Ablation B ({NUM_WINDOWS} windows of {WINDOW_SIZE}^2 px on patent-like): "
            f"indexed {indexed_seconds * 1000:.1f} ms vs holistic scan "
            f"{holistic_seconds * 1000:.1f} ms"
        )
        print(format_comparison(
            "indexed window queries beat whole-graph scans",
            "graphVizdb serves windows without touching the rest of the graph",
            f"speedup {holistic_seconds / max(indexed_seconds, 1e-9):.1f}x",
            indexed_seconds < holistic_seconds,
        ))
        print(
            f"holistic resident working set estimate: "
            f"{holistic.estimated_memory_bytes() / 1024:.0f} KiB "
            f"(whole graph + layout must stay in memory)"
        )

    assert indexed_objects > 0 and holistic_objects > 0
    assert indexed_seconds < holistic_seconds


def test_multilevel_partitioning_quality(benchmark, capsys):
    """Crossing-edge reduction of the Metis-like partitioner vs random assignment."""
    graph = community_graph(num_communities=8, community_size=40, inter_edges=6, seed=21)
    k = 8

    multilevel_result = benchmark(lambda: MultilevelPartitioner(seed=3).partition(graph, k))
    random_result = RandomPartitioner(seed=3).partition(graph, k)

    multilevel_cut = multilevel_result.edge_cut()
    random_cut = random_result.edge_cut()

    with capsys.disabled():
        print()
        print(
            f"k={k} on a {graph.num_nodes}-node community graph: "
            f"multilevel cut={multilevel_cut}, random cut={random_cut} "
            f"({random_cut / max(multilevel_cut, 1):.1f}x more crossing edges)"
        )
        print(format_comparison(
            "k-way partitioning minimises crossing edges",
            "Metis used precisely for this in Step 1",
            f"{multilevel_cut} vs {random_cut} crossing edges",
            multilevel_cut < random_cut,
        ))

    assert multilevel_cut < random_cut / 2

"""Shared fixtures for the benchmark suite.

The benchmark datasets are scaled-down synthetic versions of the paper's
Wikidata and Patent graphs (see DESIGN.md for the substitution rationale).  The
scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable
(default 0.5) so a laptop run finishes in a few minutes while larger machines
can push it up.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import build_benchmark_datasets
from repro.config import GraphVizDBConfig
from repro.core.pipeline import PreprocessingPipeline


def bench_scale() -> float:
    """Return the dataset scale factor used by every benchmark."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_config() -> GraphVizDBConfig:
    """The preprocessing configuration used by every benchmark."""
    return GraphVizDBConfig.benchmark()


@pytest.fixture(scope="session")
def bench_datasets():
    """The synthetic Wikidata-like and Patent-like benchmark graphs."""
    return build_benchmark_datasets(scale=bench_scale())


@pytest.fixture(scope="session")
def wikidata_preprocessed(bench_datasets, bench_config):
    """Preprocessed Wikidata-like dataset (shared across Fig. 3 / ablation benches)."""
    return PreprocessingPipeline(bench_config).run(bench_datasets["wikidata-like"])


@pytest.fixture(scope="session")
def patent_preprocessed(bench_datasets, bench_config):
    """Preprocessed Patent-like dataset (shared across Fig. 3 / ablation benches)."""
    return PreprocessingPipeline(bench_config).run(bench_datasets["patent-like"])

"""Table I — Time for each Preprocessing Step.

Regenerates the paper's Table I on the scaled synthetic datasets: one row per
dataset, one column per preprocessing step (partitioning, layout, organizing
partitions, abstraction layers, store & index), plus the §III observation that
parallel per-layer indexing collapses Step 5 to the layer-0 indexing time.

Expected shape (paper):
* Step 5 (indexing) dominates the total preprocessing time;
* every step is more expensive for the bigger (Wikidata) dataset *except*
  Step 1, where the Patent graph's higher average degree makes partitioning
  relatively more expensive.
"""

from __future__ import annotations

from repro.bench.reporting import format_comparison, format_table1
from repro.bench.runner import Table1Result, run_table1
from repro.graph.metrics import average_degree


def test_table1_preprocessing_steps(benchmark, bench_datasets, bench_config, capsys):
    """Run the full pipeline per dataset and print the Table I rows."""
    result: Table1Result = benchmark.pedantic(
        run_table1,
        kwargs={"datasets": bench_datasets, "config": bench_config},
        rounds=1,
        iterations=1,
    )

    rows = {row["dataset"]: row for row in result.rows()}
    wikidata = rows["wikidata-like"]
    patent = rows["patent-like"]

    with capsys.disabled():
        print()
        print(format_table1(result))
        print()
        print(format_comparison(
            "Step 5 (store & index) dominates preprocessing",
            "yes (e.g. 670 of ~718 min for Wikidata)",
            f"wikidata {wikidata['step5_s']:.2f}s of {wikidata['total_s']:.2f}s total",
            wikidata["step5_s"] >= max(wikidata[f"step{s}_s"] for s in range(1, 5)),
        ))
        print(format_comparison(
            "Step 1 takes longer for Patent despite Wikidata having more nodes "
            "(higher average degree)",
            "5.1 min (Patent) vs 1.8 min (Wikidata)",
            f"patent {patent['step1_s']:.2f}s ({patent['nodes']} nodes) vs "
            f"wikidata {wikidata['step1_s']:.2f}s ({wikidata['nodes']} nodes)",
            patent["step1_s"] > wikidata["step1_s"] and wikidata["nodes"] > patent["nodes"],
        ))

    # Sanity assertions on the reproduced shape.  The step-5 dominance of the
    # paper is substrate-dependent (MySQL index builds vs in-memory Python
    # indexes) and is therefore *reported* above rather than asserted; see
    # EXPERIMENTS.md for the discussion.
    for row in rows.values():
        assert row["total_s"] > 0
        assert all(row[f"step{step}_s"] >= 0 for step in range(1, 6))
        # Parallel indexing can never be slower than sequential indexing.
        assert row["parallel_step5_s"] <= row["step5_s"] + 1e-9
    # The larger dataset (wikidata-like has more nodes) takes longer in total.
    assert wikidata["nodes"] > patent["nodes"]
    # Step 5 is a significant cost for both datasets (non-trivial fraction).
    for row in rows.values():
        assert row["step5_s"] > 0
    # The datasets reproduce the degree relationship driving the Step-1 anomaly.
    assert average_degree(bench_datasets["patent-like"]) > average_degree(
        bench_datasets["wikidata-like"]
    )


def test_parallel_indexing_claim(benchmark, wikidata_preprocessed, capsys):
    """§III claim: with per-layer parallelism, Step 5 time = layer-0 indexing time."""
    report = wikidata_preprocessed.report

    def parallel_time() -> float:
        return report.parallel_step5_seconds()

    parallel_seconds = benchmark(parallel_time)
    sequential_seconds = report.step(5).seconds
    layer0_seconds = report.layer_indexing_seconds[0]

    with capsys.disabled():
        print()
        print(
            f"Step 5 sequential={sequential_seconds:.3f}s, "
            f"parallel(max over layers)={parallel_seconds:.3f}s, "
            f"layer-0 only={layer0_seconds:.3f}s"
        )
        print(format_comparison(
            "parallel Step 5 equals layer-0 indexing time",
            "670.1 -> 274.5 min (Wikidata), 41.2 -> 17.4 min (Patent)",
            f"{sequential_seconds:.3f}s -> {parallel_seconds:.3f}s",
            abs(parallel_seconds - layer0_seconds) < 1e-9,
        ))

    assert parallel_seconds == layer0_seconds
    assert parallel_seconds <= sequential_seconds

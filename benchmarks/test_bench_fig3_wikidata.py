"""Figure 3(a) — Time vs Window Size, Wikidata-like dataset.

Regenerates the paper's Fig. 3(a): for window sizes 200^2 .. 3000^2 pixels,
100 random window queries per size on abstraction layer 0, reporting the
average DB Query Execution, Build JSON Objects, Communication + Rendering and
Total times plus the average Nodes + Edges per window.

Expected shape (paper):
* total time grows roughly linearly with the number of objects in the window;
* Communication + Rendering dominates the total;
* DB query execution is the smallest component and grows only slightly.
"""

from __future__ import annotations

from repro.bench.reporting import format_comparison, format_figure3
from repro.bench.runner import run_figure3
from repro.bench.workloads import PAPER_WINDOW_SIZES

QUERIES_PER_SIZE = 100


def test_figure3_wikidata(benchmark, wikidata_preprocessed, capsys):
    series = benchmark.pedantic(
        run_figure3,
        kwargs={
            "preprocessing": wikidata_preprocessed,
            "dataset_name": "wikidata-like",
            "window_sizes": PAPER_WINDOW_SIZES,
            "queries_per_size": QUERIES_PER_SIZE,
        },
        rounds=1,
        iterations=1,
    )

    totals = series.series("total_ms")
    rendering = series.series("communication_rendering_ms")
    db = series.series("db_query_ms")
    objects = series.series("avg_objects")

    with capsys.disabled():
        print()
        print(format_figure3(series))
        print()
        print(format_comparison(
            "total time increases with window size",
            "monotone growth from 200^2 to 3000^2",
            f"{totals[0]:.1f}ms -> {totals[-1]:.1f}ms",
            totals[-1] > totals[0],
        ))
        print(format_comparison(
            "Communication + Rendering dominates the total",
            "yes for every window size",
            f"rendering share at 3000^2 = {rendering[-1] / totals[-1]:.0%}",
            all(r >= 0.5 * t for r, t in zip(rendering, totals)),
        ))
        print(format_comparison(
            "DB query execution is negligible and grows slightly",
            "lowest curve in Fig. 3(a)",
            f"db {db[0]:.2f}ms -> {db[-1]:.2f}ms",
            all(d <= t * 0.5 for d, t in zip(db, totals)),
        ))

    # Shape assertions.
    assert objects[-1] > objects[0], "larger windows must contain more objects"
    assert totals[-1] > totals[0], "larger windows must take longer end to end"
    # Rendering + communication dominates at the largest window size.
    assert rendering[-1] > db[-1]
    assert rendering[-1] >= 0.5 * totals[-1]
    # DB time stays a small fraction of the total (paper: "negligible").
    assert db[-1] <= 0.5 * totals[-1]

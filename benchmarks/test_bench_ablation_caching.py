"""Ablation D — window caching and prefetching (extension beyond the paper).

The paper's Fig. 3 shows that the server-side cost of a window query is already
small; this ablation evaluates the library's caching/prefetching extension,
which targets the *sequence* behaviour of a panning user: consecutive windows
overlap, so a cache of recently evaluated (enlarged) windows answers most pans
without touching the R-tree at all.

Measured: total server-side time (DB + cache lookups) for a drifting-pan trace
with and without the caching query manager, plus the cache hit rate.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_comparison
from repro.bench.traces import panning_trace
from repro.core.cache import CachingQueryManager
from repro.core.query_manager import QueryManager
from repro.core.session import ExplorationSession

NUM_PANS = 25
STEP_PX = 250.0


def _replay(manager, trace) -> tuple[float, int]:
    """Replay a pan trace; return (total server seconds, total objects)."""
    session = ExplorationSession(manager)
    total_seconds = 0.0
    total_objects = 0
    for entry in trace:
        started = time.perf_counter()
        if entry["op"] == "refresh":
            result = session.refresh()
        else:
            result = session.pan(float(entry["dx"]), float(entry["dy"]))
        total_seconds += time.perf_counter() - started
        total_objects += result.num_objects
    return total_seconds, total_objects


def test_pan_trace_with_and_without_cache(benchmark, patent_preprocessed, capsys):
    trace = panning_trace(num_steps=NUM_PANS, step_px=STEP_PX, seed=5)

    plain = QueryManager(patent_preprocessed.database)
    cached = CachingQueryManager(
        QueryManager(patent_preprocessed.database), capacity=16, prefetch_margin=0.75
    )

    cached_seconds, cached_objects = benchmark.pedantic(
        _replay, args=(cached, trace), rounds=1, iterations=1,
    )
    plain_seconds, plain_objects = _replay(plain, trace)

    hit_rate = cached.cache.stats.hit_rate

    with capsys.disabled():
        print()
        print(
            f"Ablation D ({NUM_PANS} dependent pans of {STEP_PX:.0f}px on patent-like): "
            f"uncached {plain_seconds * 1000:.1f} ms, "
            f"cached+prefetch {cached_seconds * 1000:.1f} ms, "
            f"cache hit rate {hit_rate:.0%}"
        )
        print(format_comparison(
            "caching keeps results identical while absorbing repeat window work",
            "n/a (extension beyond the paper's prototype)",
            f"objects {plain_objects} vs {cached_objects}, hit rate {hit_rate:.0%}",
            plain_objects == cached_objects and hit_rate > 0.3,
        ))

    # Correctness: the cached session must see exactly the same objects.
    assert cached_objects == plain_objects
    # The prefetcher should turn a majority of the dependent pans into hits.
    assert hit_rate > 0.3

"""Cluster scale-out: multi-process throughput and crash recovery.

Two questions the new cluster subsystem must answer with numbers:

* **Does the router beat one process on the CPU-bound workload?**  Eight
  HTTP clients replay a shared tour of window+payload queries over four
  dataset shards — the popular-region pattern: the same windows recur across
  clients and over time.  The baseline is the PR 3 single-process stack
  behind its own HTTP endpoint; against it run routers over 1, 2 and 4
  worker processes.  Two effects compound: worker processes build JSON
  payloads outside the router's GIL, and the router's cross-request
  :class:`~repro.cluster.cache.WindowResultCache` answers repeated windows
  without any worker round trip at all (on single-core CI machines the cache
  is the dominant term; ``cpu_count`` is recorded with every entry).  A
  cache-off 4-worker run is recorded alongside to keep the two effects
  separable.  The acceptance bar is 4-worker >= 2.5x single-process.
* **How fast does a killed worker's data come back?**  Kill the OS process
  owning a shard, then hammer that shard until it answers again: the router
  marks the worker dead on the first broken proxy and fails over to the
  survivor (which cold-opens the shard from SQLite — cheap since PR 2), so
  recovery must land within one health-check interval.

Measurements append to ``BENCH_cluster.json`` at the repository root,
building a trajectory across PRs.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_comparison
from repro.cluster.router import ClusterRuntime
from repro.config import ClusterConfig, GraphVizDBConfig, ServiceConfig
from repro.core.query_manager import QueryManager
from repro.storage.sqlite_backend import save_to_sqlite

#: Where the cluster trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

#: Dataset shards served by every deployment under test.
NUM_SHARDS = 4

#: Concurrent HTTP client threads.
NUM_CLIENTS = 8

#: Requests each client issues in a timed run.
REQUESTS_PER_CLIENT = 24

#: Distinct windows along the shared tour (per shard).
NUM_WINDOWS = 6

#: Router fleet sizes compared against the single-process baseline.
WORKER_COUNTS = (1, 2, 4)

#: Supervision cadence for the crash-recovery measurement — the acceptance
#: bar is recovery within one of these intervals.
HEALTH_INTERVAL_SECONDS = 0.5


def record_trajectory(measurements: dict) -> None:
    """Append one measurement entry to the BENCH_cluster.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": f"patent-like-x{NUM_SHARDS}",
        "cpu_count": os.cpu_count(),
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def cluster_shards(patent_preprocessed, tmp_path_factory):
    """``name -> path`` of the shard files plus the shared tour of targets."""
    base = tmp_path_factory.mktemp("cluster-bench")
    paths: dict[str, str] = {}
    for index in range(NUM_SHARDS):
        path = base / f"shard{index}.db"
        save_to_sqlite(patent_preprocessed.database, path)
        paths[f"shard{index}"] = str(path)
    manager = QueryManager(patent_preprocessed.database)
    window = manager.default_viewport().window()
    step = window.width / 3
    targets = []
    for name in sorted(paths):
        for index in range(NUM_WINDOWS):
            shifted = window.translated((index % 3) * step, (index // 3) * step)
            targets.append(
                f"/window?dataset={name}&payload=1"
                f"&min_x={shifted.min_x:.3f}&min_y={shifted.min_y:.3f}"
                f"&max_x={shifted.max_x:.3f}&max_y={shifted.max_y:.3f}"
            )
    return paths, targets


def _drive_clients(port: int, targets: list[str]) -> float:
    """NUM_CLIENTS keep-alive clients replay the tour; returns elapsed seconds."""
    barrier = threading.Barrier(NUM_CLIENTS + 1)
    errors: list[object] = []

    def client(seed: int) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            barrier.wait()
            for index in range(REQUESTS_PER_CLIENT):
                target = targets[(seed * 7 + index) % len(targets)]
                connection.request("GET", target)
                response = connection.getresponse()
                body = response.read()
                if response.status != 200:
                    errors.append((response.status, body[:200]))
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)
        finally:
            connection.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:3]
    return elapsed


def _warm(port: int, targets: list[str]) -> None:
    """One serial pass over every target (opens pools, fills every cache tier)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        for target in targets:
            connection.request("GET", target)
            response = connection.getresponse()
            assert response.status == 200, response.read()[:200]
            response.read()
    finally:
        connection.close()


class _SingleProcessServer:
    """The PR 3 baseline: one service, one process, one HTTP endpoint."""

    def __init__(self, paths: dict[str, str]) -> None:
        import asyncio

        from repro.service.frontend import GraphVizDBService
        from repro.service.http import serve_http

        service = GraphVizDBService(GraphVizDBConfig(
            service=ServiceConfig(pool_capacity=max(4, len(paths)))
        ))
        for name, path in paths.items():
            service.attach_sqlite(name, path)
        self._started = threading.Event()
        self._stop: dict = {}

        def run_loop() -> None:
            async def main() -> None:
                async with service:
                    server = await serve_http(service, port=0)
                    self._stop["port"] = server.sockets[0].getsockname()[1]
                    self._stop["loop"] = asyncio.get_running_loop()
                    self._stop["event"] = asyncio.Event()
                    self._started.set()
                    await self._stop["event"].wait()
                    server.close()
                    await server.wait_closed()

            asyncio.run(main())

        self._thread = threading.Thread(target=run_loop, daemon=True)
        self._thread.start()
        assert self._started.wait(timeout=30)

    @property
    def port(self) -> int:
        return self._stop["port"]

    def close(self) -> None:
        self._stop["loop"].call_soon_threadsafe(self._stop["event"].set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "_SingleProcessServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _cluster_config(num_workers: int, cache: bool = True) -> GraphVizDBConfig:
    return GraphVizDBConfig(cluster=ClusterConfig(
        num_workers=num_workers,
        cache_capacity=1024 if cache else 0,
        health_interval_seconds=HEALTH_INTERVAL_SECONDS,
    ))


def test_router_throughput_vs_single_process(cluster_shards, capsys):
    """A 4-worker router must serve >= 2.5x the single-process throughput."""
    paths, targets = cluster_shards
    total_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT

    with _SingleProcessServer(paths) as baseline:
        _warm(baseline.port, targets)
        single_seconds = _drive_clients(baseline.port, targets)
    single_rps = total_requests / single_seconds

    measurements: dict[str, object] = {
        "kind": "throughput",
        "clients": NUM_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "distinct_targets": len(targets),
        "single_process_rps": single_rps,
        "single_process_ms": single_seconds * 1000,
    }
    for num_workers in WORKER_COUNTS:
        with ClusterRuntime(paths, config=_cluster_config(num_workers)) as runtime:
            _warm(runtime.port, targets)
            elapsed = _drive_clients(runtime.port, targets)
            cache_hits = runtime.router.metrics.window_cache_hits
        measurements[f"router_{num_workers}w_rps"] = total_requests / elapsed
        measurements[f"router_{num_workers}w_ms"] = elapsed * 1000
        measurements[f"router_{num_workers}w_cache_hits"] = cache_hits
    with ClusterRuntime(paths, config=_cluster_config(4, cache=False)) as runtime:
        _warm(runtime.port, targets)
        nocache_seconds = _drive_clients(runtime.port, targets)
    measurements["router_4w_nocache_rps"] = total_requests / nocache_seconds
    speedup = measurements["router_4w_rps"] / single_rps
    measurements["speedup_4w"] = speedup
    record_trajectory(measurements)

    with capsys.disabled():
        print()
        print(
            f"Cluster throughput ({NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} "
            f"window+payload requests over {NUM_SHARDS} shards, "
            f"{os.cpu_count()} CPUs):"
        )
        print(f"  single process : {single_rps:8.0f} req/s")
        for num_workers in WORKER_COUNTS:
            print(
                f"  router {num_workers}w      : "
                f"{measurements[f'router_{num_workers}w_rps']:8.0f} req/s "
                f"({measurements[f'router_{num_workers}w_cache_hits']} cache hits)"
            )
        print(
            f"  router 4w -cache: "
            f"{measurements['router_4w_nocache_rps']:8.0f} req/s"
        )
        print(format_comparison(
            "multi-process router + window cache under CPU-bound load",
            "ISSUE 4 target: 4-worker router >= 2.5x single-process throughput",
            f"speedup: {speedup:.1f}x",
            speedup >= 2.5,
        ))
    assert speedup >= 2.5, (
        f"4-worker router only reached {speedup:.2f}x single-process throughput"
    )


def test_resident_memory_per_worker(cluster_shards, capsys):
    """Per-worker resident memory at 1/2/4 workers (ROADMAP item 2 baseline).

    Each fleet size serves one warm pass plus one full client tour, then the
    router's ``/debug/memory`` fan-out reports every worker's RSS and the
    router's own.  The trajectory records the per-worker mean and the fleet
    total so later PRs (shared read-only segments, pool eviction tuning) have
    a number to move.  Assertion is sanity-only — real RSS varies with the
    allocator and the platform — but every entry carries real measurements.
    """
    paths, targets = cluster_shards
    measurements: dict[str, object] = {"kind": "memory_per_worker"}
    lines: list[str] = []
    for num_workers in WORKER_COUNTS:
        with ClusterRuntime(paths, config=_cluster_config(num_workers)) as runtime:
            _warm(runtime.port, targets)
            _drive_clients(runtime.port, targets)
            connection = http.client.HTTPConnection(
                "127.0.0.1", runtime.port, timeout=30
            )
            try:
                connection.request("GET", "/debug/memory")
                response = connection.getresponse()
                body = response.read()
                assert response.status == 200, body[:200]
            finally:
                connection.close()
            report = json.loads(body)
        workers = report["workers"]
        assert len(workers) == num_workers, sorted(workers)
        worker_rss = [
            int((entry.get("sample") or {}).get("rss_bytes", 0))
            for entry in workers.values()
        ]
        assert all(rss > 0 for rss in worker_rss), workers
        router_rss = int(report["router"].get("rss_bytes", 0))
        per_worker_mb = sum(worker_rss) / len(worker_rss) / 1e6
        fleet_mb = int(report["fleet"].get("rss_bytes", 0)) / 1e6
        measurements[f"workers_{num_workers}_rss_mb_per_worker"] = per_worker_mb
        measurements[f"workers_{num_workers}_fleet_rss_mb"] = fleet_mb
        measurements[f"workers_{num_workers}_router_rss_mb"] = router_rss / 1e6
        lines.append(
            f"  {num_workers} worker(s) : {per_worker_mb:7.1f} MB/worker, "
            f"fleet {fleet_mb:7.1f} MB (router {router_rss / 1e6:.1f} MB)"
        )
    record_trajectory(measurements)
    with capsys.disabled():
        print()
        print(f"Resident memory by fleet size ({NUM_SHARDS} shards, after one "
              f"warm pass + one client tour):")
        for line in lines:
            print(line)
        print(format_comparison(
            "per-worker resident memory across fleet sizes",
            "ISSUE 10: baseline trajectory for ROADMAP item 2 "
            "(memory footprint of scale-out)",
            f"{measurements['workers_4_rss_mb_per_worker']:.1f} MB/worker at 4 workers",
            True,
        ))


def test_crash_recovery_within_health_interval(cluster_shards, capsys):
    """A killed worker's shards must serve again within one health interval."""
    paths, _ = cluster_shards
    config = _cluster_config(2)
    with ClusterRuntime(paths, config=config) as runtime:
        port = runtime.port
        _warm(port, [f"/window?dataset={name}" for name in sorted(paths)])
        assignment = runtime.health_summary()["assignment"]
        victim = assignment["shard0"]
        victim_generation = runtime.router._handles[victim].generation
        runtime.router._handles[victim].process.kill()

        killed_at = time.perf_counter()
        deadline = killed_at + 30.0
        recovery_seconds = None
        while time.perf_counter() < deadline:
            connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                connection.request("GET", "/window?dataset=shard0")
                if connection.getresponse().status == 200:
                    recovery_seconds = time.perf_counter() - killed_at
                    break
            except OSError:
                pass
            finally:
                connection.close()
            time.sleep(0.01)
        assert recovery_seconds is not None, "shard0 never recovered"

        restart_seconds = None
        deadline = time.perf_counter() + 60.0
        while time.perf_counter() < deadline:
            handle = runtime.router._handles[victim]
            if handle.healthy and handle.generation > victim_generation:
                restart_seconds = time.perf_counter() - killed_at
                break
            time.sleep(0.05)

    record_trajectory({
        "kind": "crash_recovery",
        "recovery_ms": recovery_seconds * 1000,
        "restart_ms": restart_seconds * 1000 if restart_seconds else None,
        "health_interval_ms": HEALTH_INTERVAL_SECONDS * 1000,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "failover after a worker crash",
            "ISSUE 4 target: killed worker's datasets serve again within one "
            f"health-check interval ({HEALTH_INTERVAL_SECONDS * 1000:.0f} ms)",
            f"recovered in {recovery_seconds * 1000:.0f} ms"
            + (
                f", replacement worker up in {restart_seconds * 1000:.0f} ms"
                if restart_seconds else ""
            ),
            recovery_seconds <= HEALTH_INTERVAL_SECONDS,
        ))
    assert recovery_seconds <= HEALTH_INTERVAL_SECONDS, (
        f"recovery took {recovery_seconds * 1000:.0f} ms "
        f"(> one {HEALTH_INTERVAL_SECONDS * 1000:.0f} ms health interval)"
    )

"""Cold start — opening a preprocessed SQLite database: page restore vs rebuild.

The paper's offline preprocessing exists so the online system never pays
indexing cost at query time.  This benchmark measures what "open a preprocessed
database" costs under the two regimes:

* **rebuild** — the seed behaviour: every spatial index is re-packed from raw
  rows and every secondary index (B+-trees, tries) is built eagerly
  (``index_pages=False, lazy_secondary_indexes=False``);
* **restore** — the shipped path: the packed R-tree is deserialised from the
  ``layer_index_pages`` BLOBs with a flat ``frombytes`` copy and the secondary
  indexes are deferred to first use (default config).

Each open is timed end to end (connect, fetch rows, install indexes) and the
best of several repeats is kept, so the comparison is I/O-plus-CPU against
CPU-bound re-indexing rather than filesystem-cache luck.  Measurements append
to ``BENCH_coldstart.json`` at the repository root, building a trajectory
across PRs; the assertion floor is the ISSUE 2 acceptance bar of a >= 2x
restore advantage on both synthetic datasets, with restored databases
answering window/kNN/count queries byte-identically to freshly built ones.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.reporting import format_comparison
from repro.bench.workloads import random_windows
from repro.config import StorageConfig
from repro.core.json_builder import build_payload, payload_to_json
from repro.spatial.geometry import Point
from repro.spatial.packed_rtree import PackedRTree
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite

#: Where the cold-start trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_coldstart.json"

#: Timed opens per path; the minimum is reported.
REPEATS = 3

NUM_WINDOWS = 20
WINDOW_SIZE = 1500
NEAREST_K = 10

#: The seed's cold-start configuration: no pages, eager secondary indexes.
REBUILD_CONFIG = StorageConfig(index_pages=False, lazy_secondary_indexes=False)


def record_trajectory(dataset: str, measurements: dict) -> None:
    """Append one dataset's measurements to the BENCH_coldstart.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": dataset,
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _timed_open(path: Path, config: StorageConfig) -> tuple[float, object]:
    """Best-of-N wall time for a full load_from_sqlite open."""
    best = float("inf")
    database = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        database = load_from_sqlite(path, config=config)
        best = min(best, time.perf_counter() - started)
    return best, database


def _query_parity(fresh, restored, rebuilt) -> None:
    """Window/kNN/count results must be byte-identical across the three opens."""
    for layer in fresh.layers():
        fresh_table = fresh.table(layer)
        bounds = fresh_table.bounds()
        if bounds is None:
            continue
        windows = random_windows(bounds, WINDOW_SIZE, count=NUM_WINDOWS, seed=23)
        for other in (restored, rebuilt):
            table = other.table(layer)
            for window in windows:
                fresh_rows = fresh_table.window_query(window)
                other_rows = table.window_query(window)
                assert other_rows == fresh_rows
                assert payload_to_json(build_payload(other_rows)) == payload_to_json(
                    build_payload(fresh_rows)
                )
                assert table.count_window(window) == fresh_table.count_window(window)
                center = Point(
                    (window.min_x + window.max_x) / 2,
                    (window.min_y + window.max_y) / 2,
                )
                assert table.rtree.nearest(center, k=NEAREST_K) == (
                    fresh_table.rtree.nearest(center, k=NEAREST_K)
                )


def _coldstart(preprocessed, dataset: str, tmp_path, capsys) -> None:
    database = preprocessed.database
    db_path = tmp_path / f"{dataset}.db"

    started = time.perf_counter()
    save_to_sqlite(database, db_path)
    save_seconds = time.perf_counter() - started

    rebuild_seconds, rebuilt = _timed_open(db_path, REBUILD_CONFIG)
    restore_seconds, restored = _timed_open(db_path, StorageConfig())

    # The restore path must actually have used the pages.
    for layer in restored.layers():
        table = restored.table(layer)
        assert isinstance(table.rtree, PackedRTree)
        assert not table.node_indexes_built

    _query_parity(database, restored, rebuilt)

    num_rows = sum(database.table(layer).num_rows for layer in database.layers())
    speedup = rebuild_seconds / max(restore_seconds, 1e-9)
    record_trajectory(dataset, {
        "num_layers": database.num_layers,
        "num_rows": num_rows,
        "db_bytes": db_path.stat().st_size,
        "save_ms": save_seconds * 1000,
        "rebuild_open_ms": rebuild_seconds * 1000,
        "restore_open_ms": restore_seconds * 1000,
        "speedup": speedup,
    })

    with capsys.disabled():
        print()
        print(
            f"Cold start on {dataset} ({num_rows} rows over "
            f"{database.num_layers} layers, {db_path.stat().st_size / 1024:.0f} KiB):"
        )
        print(f"  save            : {save_seconds * 1000:8.1f} ms")
        print(f"  open w/ rebuild : {rebuild_seconds * 1000:8.1f} ms")
        print(f"  open w/ restore : {restore_seconds * 1000:8.1f} ms")
        print(format_comparison(
            "packed-page restore makes cold start I/O-bound",
            "ISSUE 2 target: restore >= 2x faster than index rebuild",
            f"speedup: {speedup:.1f}x",
            restore_seconds * 2 <= rebuild_seconds,
        ))

    # Acceptance bar: restore beats rebuild by a healthy floor at bench scale.
    assert restore_seconds * 2 <= rebuild_seconds, (
        f"packed-page restore only {speedup:.2f}x faster on {dataset}"
    )


def test_coldstart_patent(patent_preprocessed, tmp_path, capsys):
    """Cold-start comparison on the Patent-like dataset."""
    _coldstart(patent_preprocessed, "patent-like", tmp_path, capsys)


def test_coldstart_wikidata(wikidata_preprocessed, tmp_path, capsys):
    """Cold-start comparison on the Wikidata-like dataset."""
    _coldstart(wikidata_preprocessed, "wikidata-like", tmp_path, capsys)

"""Ablation A — why an R-tree: window queries via R-tree vs grid index vs linear scan.

The paper's design stores edge geometries in an R-tree and evaluates every user
interaction as a window query against it.  This ablation quantifies that choice
on the Patent-like dataset: the same random-window workload is evaluated with
(1) the layer table's R-tree, (2) a uniform grid index and (3) a full linear
scan over the rows (the "holistic" access path).
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_comparison
from repro.bench.workloads import random_windows
from repro.spatial.grid_index import GridIndex

WINDOW_SIZE = 1500
NUM_WINDOWS = 50


def _build_workload(preprocessed):
    bounds = preprocessed.database.bounds(0)
    return random_windows(bounds, WINDOW_SIZE, count=NUM_WINDOWS, seed=17)


def test_rtree_vs_scan_vs_grid(benchmark, patent_preprocessed, capsys):
    table = patent_preprocessed.database.table(0)
    windows = _build_workload(patent_preprocessed)
    all_rows = list(table.scan())

    # Grid index over the same entries.
    grid = GridIndex.bulk_load(
        ((row.bounding_rect(), row.row_id) for row in all_rows), cell_size=WINDOW_SIZE / 2
    )

    def rtree_workload() -> int:
        return sum(len(table.rtree.window_query(window)) for window in windows)

    def grid_workload() -> int:
        return sum(len(grid.window_query(window)) for window in windows)

    def scan_workload() -> int:
        return sum(
            sum(1 for row in all_rows if row.bounding_rect().intersects(window))
            for window in windows
        )

    # pytest-benchmark measures the R-tree (the paper's design); the alternatives
    # are timed manually for the comparison report.
    rtree_matches = benchmark(rtree_workload)

    started = time.perf_counter()
    grid_matches = grid_workload()
    grid_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scan_matches = scan_workload()
    scan_seconds = time.perf_counter() - started

    started = time.perf_counter()
    rtree_workload()
    rtree_seconds = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(
            f"Ablation A ({NUM_WINDOWS} windows of {WINDOW_SIZE}^2 px, layer 0 of patent-like):"
        )
        print(f"  R-tree      : {rtree_seconds * 1000:8.1f} ms  ({rtree_matches} candidate rows)")
        print(f"  Grid index  : {grid_seconds * 1000:8.1f} ms  ({grid_matches} candidate rows)")
        print(f"  Linear scan : {scan_seconds * 1000:8.1f} ms  ({scan_matches} candidate rows)")
        print(format_comparison(
            "spatial index beats a linear scan for window queries",
            "implicit in the paper's design (DB time negligible)",
            f"speedup vs scan: {scan_seconds / max(rtree_seconds, 1e-9):.1f}x",
            rtree_seconds < scan_seconds,
        ))

    # All three access paths agree on the result size.
    assert rtree_matches == grid_matches == scan_matches
    # The R-tree must beat the linear scan decisively on this workload.
    assert rtree_seconds < scan_seconds


def test_rtree_split_strategies(benchmark, patent_preprocessed, capsys):
    """Quadratic (Guttman) vs R*-style splits: build cost and query cost."""
    from repro.spatial.rtree import RTree

    table = patent_preprocessed.database.table(0)
    entries = [(row.bounding_rect(), row.row_id) for row in table.scan()]
    windows = _build_workload(patent_preprocessed)

    def build(split_method: str) -> RTree:
        tree = RTree(max_entries=16, split_method=split_method)
        for rect, item in entries:
            tree.insert(rect, item)
        return tree

    quadratic_tree = benchmark(lambda: build("quadratic"))

    started = time.perf_counter()
    rstar_tree = build("rstar")
    rstar_build_seconds = time.perf_counter() - started

    def query_all(tree: RTree) -> tuple[int, float]:
        started_inner = time.perf_counter()
        matches = sum(len(tree.window_query(window)) for window in windows)
        return matches, time.perf_counter() - started_inner

    quadratic_matches, quadratic_query_seconds = query_all(quadratic_tree)
    rstar_matches, rstar_query_seconds = query_all(rstar_tree)

    with capsys.disabled():
        print()
        print(
            f"R-tree split strategies over {len(entries)} geometries, "
            f"{len(windows)} windows of {WINDOW_SIZE}^2 px:"
        )
        print(
            f"  quadratic: query {quadratic_query_seconds * 1000:7.1f} ms, "
            f"nodes {quadratic_tree.stats().num_nodes}"
        )
        print(
            f"  rstar    : query {rstar_query_seconds * 1000:7.1f} ms, "
            f"nodes {rstar_tree.stats().num_nodes}, "
            f"build {rstar_build_seconds * 1000:7.1f} ms"
        )

    assert quadratic_matches == rstar_matches
    quadratic_tree.check_invariants()
    rstar_tree.check_invariants()


def test_rtree_bulk_load_vs_incremental_build(benchmark, patent_preprocessed, capsys):
    """STR bulk loading (used by Step 5) vs repeated insertion."""
    from repro.spatial.rtree import RTree

    table = patent_preprocessed.database.table(0)
    entries = [(row.bounding_rect(), row.row_id) for row in table.scan()]

    bulk_tree = benchmark(lambda: RTree.bulk_load(entries, max_entries=32))

    started = time.perf_counter()
    incremental = RTree(max_entries=32)
    for rect, item in entries:
        incremental.insert(rect, item)
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    RTree.bulk_load(entries, max_entries=32)
    bulk_seconds = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(
            f"R-tree build over {len(entries)} edge geometries: "
            f"bulk load {bulk_seconds * 1000:.1f} ms vs "
            f"incremental {incremental_seconds * 1000:.1f} ms; "
            f"nodes {bulk_tree.stats().num_nodes} vs {incremental.stats().num_nodes}"
        )

    assert bulk_seconds < incremental_seconds
    assert bulk_tree.stats().num_nodes <= incremental.stats().num_nodes

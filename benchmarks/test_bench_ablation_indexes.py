"""Ablation A — why an R-tree: window queries via R-tree vs grid index vs linear scan.

The paper's design stores edge geometries in an R-tree and evaluates every user
interaction as a window query against it.  This ablation quantifies that choice
on the Patent-like dataset: the same random-window workload is evaluated with
(1) the layer table's R-tree, (2) a uniform grid index and (3) a full linear
scan over the rows (the "holistic" access path).

It also records the flat packed-index comparison (dynamic pointer-based
``RTree`` vs Hilbert-packed ``PackedRTree``) on both synthetic datasets and
appends the measurements to ``BENCH_indexes.json`` at the repository root, so
successive PRs accumulate a perf trajectory for the hottest online path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.reporting import format_comparison
from repro.bench.workloads import random_windows
from repro.spatial.geometry import Point
from repro.spatial.grid_index import GridIndex
from repro.spatial.packed_rtree import PackedRTree
from repro.spatial.rtree import RTree

WINDOW_SIZE = 1500
NUM_WINDOWS = 50
NEAREST_K = 10

#: Where the index-ablation trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_indexes.json"


def _build_workload(preprocessed):
    bounds = preprocessed.database.bounds(0)
    return random_windows(bounds, WINDOW_SIZE, count=NUM_WINDOWS, seed=17)


def record_trajectory(dataset: str, measurements: dict) -> None:
    """Append one dataset's measurements to the BENCH_indexes.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "window_size": WINDOW_SIZE,
        "num_windows": NUM_WINDOWS,
        "dataset": dataset,
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_rtree_vs_scan_vs_grid(benchmark, patent_preprocessed, capsys):
    table = patent_preprocessed.database.table(0)
    windows = _build_workload(patent_preprocessed)
    all_rows = list(table.scan())

    # Grid index over the same entries.
    grid = GridIndex.bulk_load(
        ((row.bounding_rect(), row.row_id) for row in all_rows), cell_size=WINDOW_SIZE / 2
    )

    def rtree_workload() -> int:
        return sum(len(table.rtree.window_query(window)) for window in windows)

    def grid_workload() -> int:
        return sum(len(grid.window_query(window)) for window in windows)

    def scan_workload() -> int:
        return sum(
            sum(1 for row in all_rows if row.bounding_rect().intersects(window))
            for window in windows
        )

    # pytest-benchmark measures the R-tree (the paper's design); the alternatives
    # are timed manually for the comparison report.
    rtree_matches = benchmark(rtree_workload)

    started = time.perf_counter()
    grid_matches = grid_workload()
    grid_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scan_matches = scan_workload()
    scan_seconds = time.perf_counter() - started

    started = time.perf_counter()
    rtree_workload()
    rtree_seconds = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(
            f"Ablation A ({NUM_WINDOWS} windows of {WINDOW_SIZE}^2 px, layer 0 of patent-like):"
        )
        print(f"  R-tree      : {rtree_seconds * 1000:8.1f} ms  ({rtree_matches} candidate rows)")
        print(f"  Grid index  : {grid_seconds * 1000:8.1f} ms  ({grid_matches} candidate rows)")
        print(f"  Linear scan : {scan_seconds * 1000:8.1f} ms  ({scan_matches} candidate rows)")
        print(format_comparison(
            "spatial index beats a linear scan for window queries",
            "implicit in the paper's design (DB time negligible)",
            f"speedup vs scan: {scan_seconds / max(rtree_seconds, 1e-9):.1f}x",
            rtree_seconds < scan_seconds,
        ))

    # All three access paths agree on the result size.
    assert rtree_matches == grid_matches == scan_matches
    # The R-tree must beat the linear scan decisively on this workload.
    assert rtree_seconds < scan_seconds


def test_rtree_split_strategies(benchmark, patent_preprocessed, capsys):
    """Quadratic (Guttman) vs R*-style splits: build cost and query cost."""
    from repro.spatial.rtree import RTree

    table = patent_preprocessed.database.table(0)
    entries = [(row.bounding_rect(), row.row_id) for row in table.scan()]
    windows = _build_workload(patent_preprocessed)

    def build(split_method: str) -> RTree:
        tree = RTree(max_entries=16, split_method=split_method)
        for rect, item in entries:
            tree.insert(rect, item)
        return tree

    quadratic_tree = benchmark(lambda: build("quadratic"))

    started = time.perf_counter()
    rstar_tree = build("rstar")
    rstar_build_seconds = time.perf_counter() - started

    def query_all(tree: RTree) -> tuple[int, float]:
        started_inner = time.perf_counter()
        matches = sum(len(tree.window_query(window)) for window in windows)
        return matches, time.perf_counter() - started_inner

    quadratic_matches, quadratic_query_seconds = query_all(quadratic_tree)
    rstar_matches, rstar_query_seconds = query_all(rstar_tree)

    with capsys.disabled():
        print()
        print(
            f"R-tree split strategies over {len(entries)} geometries, "
            f"{len(windows)} windows of {WINDOW_SIZE}^2 px:"
        )
        print(
            f"  quadratic: query {quadratic_query_seconds * 1000:7.1f} ms, "
            f"nodes {quadratic_tree.stats().num_nodes}"
        )
        print(
            f"  rstar    : query {rstar_query_seconds * 1000:7.1f} ms, "
            f"nodes {rstar_tree.stats().num_nodes}, "
            f"build {rstar_build_seconds * 1000:7.1f} ms"
        )

    assert quadratic_matches == rstar_matches
    quadratic_tree.check_invariants()
    rstar_tree.check_invariants()


def _time_queries(query, windows) -> tuple[int, float]:
    started = time.perf_counter()
    matches = sum(len(query(window)) for window in windows)
    return matches, time.perf_counter() - started


def _packed_vs_dynamic(preprocessed, dataset_name: str, capsys) -> None:
    """Old vs new window-query pipeline, plus index-only latencies.

    The *legacy pipeline* reproduces the seed's hot path exactly: a dynamic
    (incrementally built) R-tree, a per-candidate geometry decode for the
    exact filter, and a from-scratch payload build per query.  The *packed
    pipeline* is the shipped path: Hilbert-packed flat index, memoised
    segments and fragment-cached zero-copy payloads via the query manager.
    """
    from repro.core.json_builder import build_payload, payload_to_json
    from repro.core.query_manager import QueryManager
    from repro.core.streaming import stream_payload

    table = preprocessed.database.table(0)
    rows_by_id = {row.row_id: row for row in table.scan()}
    entries = [(row.bounding_rect(), row.row_id) for row in rows_by_id.values()]
    windows = _build_workload(preprocessed)

    started = time.perf_counter()
    dynamic = RTree(max_entries=32)
    for rect, item in entries:
        dynamic.insert(rect, item)
    dynamic_build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    packed = PackedRTree.bulk_load(entries, max_entries=32)
    packed_build_seconds = time.perf_counter() - started

    # ---------------------------------------------------- index-only latency
    dynamic.window_query(windows[0])
    packed.window_query(windows[0])
    dynamic_matches, dynamic_index_seconds = _time_queries(dynamic.window_query, windows)
    packed_matches, packed_index_seconds = _time_queries(packed.window_query, windows)

    started = time.perf_counter()
    batched = packed.window_query_batch(windows)
    batch_seconds = time.perf_counter() - started
    batched_matches = sum(len(result) for result in batched)

    # --------------------------------------- kNN / count-window parity paths
    # The ROADMAP parity item: the ablation must also track the non-window
    # query surface (best-first kNN and the counting traversal) so a future
    # regression in either shows up in the trajectory.
    centers = [
        Point((w.min_x + w.max_x) / 2, (w.min_y + w.max_y) / 2) for w in windows
    ]

    def nearest_workload(tree) -> int:
        return sum(len(tree.nearest(center, k=NEAREST_K)) for center in centers)

    nearest_workload(dynamic)
    nearest_workload(packed)
    started = time.perf_counter()
    dynamic_nearest_total = nearest_workload(dynamic)
    dynamic_nearest_seconds = time.perf_counter() - started
    started = time.perf_counter()
    packed_nearest_total = nearest_workload(packed)
    packed_nearest_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dynamic_counts = [dynamic.count_window(window) for window in windows]
    dynamic_count_seconds = time.perf_counter() - started
    started = time.perf_counter()
    packed_counts = [packed.count_window(window) for window in windows]
    packed_count_seconds = time.perf_counter() - started

    # ------------------------------------------------------ pipeline latency
    chunk_size = 200

    def legacy_pipeline(window) -> int:
        candidates = dynamic.window_query(window)
        rows = [
            row for row in (rows_by_id[row_id] for row_id in candidates)
            if row.segment().intersects_rect(window)
        ]
        rows.sort(key=lambda row: row.row_id)
        payload = build_payload(rows)
        list(stream_payload(payload, chunk_size))
        return payload.num_objects

    manager = QueryManager(preprocessed.database)

    def packed_pipeline(window) -> int:
        return manager.window_query(window, layer=0).num_objects

    # One warm pass over the whole workload for both paths: the serving
    # regime of interest is steady state (segment/fragment caches populated),
    # which is where a read-mostly online table lives after a few requests.
    for window in windows:
        legacy_pipeline(window)
        packed_pipeline(window)
    legacy_objects, legacy_seconds = _time_queries_scalar(legacy_pipeline, windows)
    packed_objects, packed_seconds = _time_queries_scalar(packed_pipeline, windows)

    index_speedup = dynamic_index_seconds / max(packed_index_seconds, 1e-9)
    pipeline_speedup = legacy_seconds / max(packed_seconds, 1e-9)
    record_trajectory(dataset_name, {
        "num_entries": len(entries),
        "dynamic_rtree_ms": dynamic_index_seconds * 1000,
        "packed_rtree_ms": packed_index_seconds * 1000,
        "packed_batch_ms": batch_seconds * 1000,
        "dynamic_build_ms": dynamic_build_seconds * 1000,
        "packed_build_ms": packed_build_seconds * 1000,
        "legacy_pipeline_ms": legacy_seconds * 1000,
        "packed_pipeline_ms": packed_seconds * 1000,
        "index_speedup": index_speedup,
        "speedup": pipeline_speedup,
        "nearest_k": NEAREST_K,
        "dynamic_nearest_ms": dynamic_nearest_seconds * 1000,
        "packed_nearest_ms": packed_nearest_seconds * 1000,
        "dynamic_count_ms": dynamic_count_seconds * 1000,
        "packed_count_ms": packed_count_seconds * 1000,
    })

    with capsys.disabled():
        print()
        print(
            f"Packed vs dynamic window-query path over {len(entries)} geometries "
            f"of {dataset_name}, {len(windows)} windows of {WINDOW_SIZE}^2 px:"
        )
        print(
            f"  index   — dynamic {dynamic_index_seconds * 1000:7.1f} ms, "
            f"packed {packed_index_seconds * 1000:7.1f} ms "
            f"(batch {batch_seconds * 1000:6.1f} ms): {index_speedup:.1f}x"
        )
        print(
            f"  build   — dynamic {dynamic_build_seconds * 1000:7.1f} ms, "
            f"packed {packed_build_seconds * 1000:7.1f} ms"
        )
        print(
            f"  pipeline— legacy  {legacy_seconds * 1000:7.1f} ms, "
            f"packed {packed_seconds * 1000:7.1f} ms: {pipeline_speedup:.1f}x"
        )
        print(
            f"  nearest — dynamic {dynamic_nearest_seconds * 1000:7.1f} ms, "
            f"packed {packed_nearest_seconds * 1000:7.1f} ms "
            f"(k={NEAREST_K}, {len(centers)} probes)"
        )
        print(
            f"  count   — dynamic {dynamic_count_seconds * 1000:7.1f} ms, "
            f"packed {packed_count_seconds * 1000:7.1f} ms"
        )
        print(format_comparison(
            "flat packed index + zero-copy pipeline accelerate the hottest path",
            "ISSUE 1 target: >= 2x on window-query latency vs the dynamic R-tree path",
            f"pipeline speedup: {pipeline_speedup:.1f}x (index alone {index_speedup:.1f}x)",
            packed_seconds * 2 <= legacy_seconds,
        ))

    # Identical result sets, sequential and batched; identical wire payloads.
    assert packed_matches == dynamic_matches == batched_matches
    # Count and kNN parity: counts must agree exactly per window; for kNN the
    # returned neighbour *distances* must agree per probe (tie-breaking order
    # between equidistant entries may legitimately differ across trees).
    assert packed_counts == dynamic_counts
    assert dynamic_nearest_total == packed_nearest_total
    rects = {item: rect for rect, item in entries}

    def neighbour_distances(tree, center) -> list[float]:
        px, py = center.x, center.y
        distances = []
        for item in tree.nearest(center, k=NEAREST_K):
            rect = rects[item]
            dx = rect.min_x - px if px < rect.min_x else (
                px - rect.max_x if px > rect.max_x else 0.0
            )
            dy = rect.min_y - py if py < rect.min_y else (
                py - rect.max_y if py > rect.max_y else 0.0
            )
            distances.append(dx * dx + dy * dy)
        return distances

    for center in centers[:10]:
        assert neighbour_distances(packed, center) == neighbour_distances(
            dynamic, center
        )
    assert packed_objects == legacy_objects
    for window, batch_result in zip(windows, batched):
        assert sorted(batch_result) == sorted(packed.window_query(window))
    sample = windows[0]
    legacy_rows = sorted(
        (row for row in (rows_by_id[rid] for rid in dynamic.window_query(sample))
         if row.segment().intersects_rect(sample)),
        key=lambda row: row.row_id,
    )
    assert payload_to_json(
        manager.window_query(sample, layer=0).payload
    ) == payload_to_json(build_payload(legacy_rows))
    # The flat index itself must not be meaningfully slower than the dynamic
    # tree (25% tolerance absorbs scheduler noise on tiny smoke-scale runs)...
    assert packed_index_seconds <= dynamic_index_seconds * 1.25, (
        f"packed index slower than dynamic on {dataset_name}"
    )
    # ...and the tentpole acceptance bar: >= 2x on window-query latency.
    assert packed_seconds * 2 <= legacy_seconds, (
        f"packed pipeline only {pipeline_speedup:.2f}x faster on {dataset_name}"
    )


def _time_queries_scalar(query, windows) -> tuple[int, float]:
    started = time.perf_counter()
    total = sum(query(window) for window in windows)
    return total, time.perf_counter() - started


def test_packed_vs_dynamic_rtree_patent(patent_preprocessed, capsys):
    """Flat packed index vs dynamic R-tree on the Patent-like dataset."""
    _packed_vs_dynamic(patent_preprocessed, "patent-like", capsys)


def test_packed_vs_dynamic_rtree_wikidata(wikidata_preprocessed, capsys):
    """Flat packed index vs dynamic R-tree on the Wikidata-like dataset."""
    _packed_vs_dynamic(wikidata_preprocessed, "wikidata-like", capsys)


def test_rtree_bulk_load_vs_incremental_build(benchmark, patent_preprocessed, capsys):
    """STR bulk loading (used by Step 5) vs repeated insertion."""
    from repro.spatial.rtree import RTree

    table = patent_preprocessed.database.table(0)
    entries = [(row.bounding_rect(), row.row_id) for row in table.scan()]

    bulk_tree = benchmark(lambda: RTree.bulk_load(entries, max_entries=32))

    started = time.perf_counter()
    incremental = RTree(max_entries=32)
    for rect, item in entries:
        incremental.insert(rect, item)
    incremental_seconds = time.perf_counter() - started

    started = time.perf_counter()
    RTree.bulk_load(entries, max_entries=32)
    bulk_seconds = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(
            f"R-tree build over {len(entries)} edge geometries: "
            f"bulk load {bulk_seconds * 1000:.1f} ms vs "
            f"incremental {incremental_seconds * 1000:.1f} ms; "
            f"nodes {bulk_tree.stats().num_nodes} vs {incremental.stats().num_nodes}"
        )

    assert bulk_seconds < incremental_seconds
    assert bulk_tree.stats().num_nodes <= incremental.stats().num_nodes

"""Observability overhead: what do tracing and histograms cost on the hot path?

PR 8 threads spans and log-bucketed latency histograms through every request.
The instrumentation contract is that it is *cheap enough to leave on*: the
target is under 3% added wall time on the hot window path (the paper's
dominant operation), with the histogram's O(1) ``record`` fast enough to
instrument every phase of every request.

Two measurements:

* **end-to-end overhead** — N window queries through the full service
  front-end (admission, coalescer, thread pool), once with tracing +
  histograms enabled (each request under its own trace, like the HTTP tier
  runs it) and once with both disabled via :class:`ObservabilityConfig`.
  Reports the relative overhead and the enabled run's p50/p95/p99 from the
  very histograms being measured.
* **histogram record throughput** — raw ``Histogram.record`` calls per
  second, single-threaded (the per-phase cost every span adds).

Measurements append to ``BENCH_obs.json`` at the repository root, building a
trajectory across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import obs
from repro.bench.reporting import format_comparison
from repro.config import GraphVizDBConfig, ObservabilityConfig
from repro.core.query_manager import QueryManager
from repro.obs import Histogram
from repro.service.frontend import GraphVizDBService, ServiceRuntime

#: Where the observability trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: Window queries per timed run.
REQUESTS = 160

#: Distinct windows along the pan path (shared row caches stay warm).
NUM_WINDOWS = 8

#: Best-of repeats per configuration, to shed scheduler noise.
REPEATS = 3

#: The acceptance bar is < 3% overhead; the assertion is lenient (25%)
#: because CI machines are noisy at smoke scales where a whole run is tens
#: of milliseconds — the trajectory file is what tracks the real number.
OVERHEAD_ASSERT_LIMIT = 0.25

#: Raw histogram records in the throughput microbench.
RECORD_COUNT = 200_000


def record_trajectory(dataset: str, measurements: dict) -> None:
    """Append one measurement entry to the BENCH_obs.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
        "dataset": dataset,
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _pan_path(database) -> list:
    base = QueryManager(database).default_viewport().window()
    step = base.width / 3
    return [
        base.translated((index % 4) * step, (index // 4) * step)
        for index in range(NUM_WINDOWS)
    ]


def _timed_run(database, windows, enabled: bool) -> tuple[float, dict]:
    """One service instance, REQUESTS window queries, best-of wall time."""
    config = GraphVizDBConfig(observability=ObservabilityConfig(
        trace_enabled=enabled, histogram_enabled=enabled,
    ))
    service = GraphVizDBService(config)
    service.register_dataset("patent-like", database)
    with ServiceRuntime(service) as runtime:
        runtime.window_query("patent-like", windows[0])  # warm the loop path
        best = float("inf")
        for _ in range(REPEATS):
            started = time.perf_counter()
            for index in range(REQUESTS):
                if enabled:
                    # Each request under its own trace — exactly what the
                    # HTTP tier does, so spans really open and close.
                    trace, token = obs.begin_trace(name="bench window")
                    try:
                        runtime.window_query(
                            "patent-like", windows[index % len(windows)]
                        )
                    finally:
                        trace.finish()
                        service.traces.add(trace)
                        obs.end_trace(token)
                else:
                    runtime.window_query(
                        "patent-like", windows[index % len(windows)]
                    )
            best = min(best, time.perf_counter() - started)
        summary = runtime.metrics_summary()
    return best, summary


def test_tracing_overhead_on_hot_window_path(patent_preprocessed, capsys):
    """Tracing + histograms must not tax the hot window path materially."""
    database = patent_preprocessed.database
    windows = _pan_path(database)

    off_seconds, off_summary = _timed_run(database, windows, enabled=False)
    on_seconds, on_summary = _timed_run(database, windows, enabled=True)
    overhead = (on_seconds - off_seconds) / max(off_seconds, 1e-9)

    assert "latency" not in off_summary or not off_summary.get("latency"), (
        "disabled observability must not populate latency histograms"
    )
    window_state = on_summary["latency"]["window"]
    assert window_state["count"] >= REQUESTS
    assert 0.0 <= window_state["p50"] <= window_state["p95"] <= window_state["p99"]

    record_trajectory("patent-like", {
        "kind": "hot_path_overhead",
        "requests": REQUESTS,
        "obs_off_ms": off_seconds * 1000,
        "obs_on_ms": on_seconds * 1000,
        "overhead_ratio": overhead,
        "window_p50_ms": window_state["p50"] * 1000,
        "window_p95_ms": window_state["p95"] * 1000,
        "window_p99_ms": window_state["p99"] * 1000,
    })
    with capsys.disabled():
        print()
        print(f"Observability overhead on patent-like ({REQUESTS} windows):")
        print(f"  obs off : {off_seconds * 1000:8.1f} ms")
        print(f"  obs on  : {on_seconds * 1000:8.1f} ms  "
              f"(p50 {window_state['p50'] * 1000:.2f} / "
              f"p95 {window_state['p95'] * 1000:.2f} / "
              f"p99 {window_state['p99'] * 1000:.2f} ms)")
        print(format_comparison(
            "tracing + histograms on the hot window path",
            "ISSUE 8 target: < 3% added wall time",
            f"overhead: {overhead * 100:+.1f}%",
            overhead < 0.03,
        ))
    assert overhead < OVERHEAD_ASSERT_LIMIT, (
        f"observability overhead {overhead * 100:.1f}% exceeds even the "
        f"lenient {OVERHEAD_ASSERT_LIMIT * 100:.0f}% CI bound"
    )


def test_profiler_overhead_on_hot_window_path(patent_preprocessed, capsys):
    """A running sampling profiler must not tax the hot window path (PR 10).

    Throughput comparison over fixed wall windows: window queries per second
    with no profiler vs with a :class:`SamplingProfiler` collection running
    for the whole window at its default rate.  The profiler's cost model is
    ``hz × threads`` stack walks per second plus the lowered GIL switch
    interval during collection — both independent of request rate — so the
    target is the same < 3% bar as the tracing overhead, with the same
    lenient CI assertion.
    """
    import threading

    database = patent_preprocessed.database
    windows = _pan_path(database)
    window_seconds = 1.2

    config = GraphVizDBConfig(observability=ObservabilityConfig(
        trace_enabled=True, histogram_enabled=True,
    ))
    service = GraphVizDBService(config)
    service.register_dataset("patent-like", database)
    with ServiceRuntime(service) as runtime:
        runtime.window_query("patent-like", windows[0])  # warm the loop path

        def rate(profiler) -> tuple[float, dict]:
            collected: dict = {}
            thread = None
            if profiler is not None:
                def collect() -> None:
                    collected.update(profiler.collect(window_seconds))
                thread = threading.Thread(target=collect, daemon=True)
                thread.start()
            stop_at = time.perf_counter() + window_seconds
            count = 0
            while time.perf_counter() < stop_at:
                runtime.window_query("patent-like", windows[count % len(windows)])
                count += 1
            if thread is not None:
                thread.join()
            return count / window_seconds, collected

        best_off = 0.0
        best_on = 0.0
        profile: dict = {}
        for _ in range(REPEATS):
            off_rate, _ = rate(None)
            on_rate, collected = rate(service.profiler)
            if on_rate > best_on:
                best_on, profile = on_rate, collected
            best_off = max(best_off, off_rate)
    overhead = (best_off - best_on) / max(best_off, 1e-9)

    assert profile.get("samples", 0) > 0, "profiler never sampled during the run"
    record_trajectory("patent-like", {
        "kind": "profiler_overhead",
        "window_seconds": window_seconds,
        "profiler_hz": service.profiler.default_hz,
        "profiler_samples": int(profile.get("samples", 0)),
        "rps_off": best_off,
        "rps_on": best_on,
        "overhead_ratio": overhead,
    })
    with capsys.disabled():
        print()
        print(f"Profiler overhead on patent-like "
              f"({window_seconds:.1f}s windows @ {service.profiler.default_hz}Hz):")
        print(f"  profiler off : {best_off:8.0f} windows/s")
        print(f"  profiler on  : {best_on:8.0f} windows/s  "
              f"({profile.get('samples', 0)} samples)")
        print(format_comparison(
            "sampling profiler on the hot window path",
            "ISSUE 10 target: < 3% throughput loss while collecting",
            f"overhead: {overhead * 100:+.1f}%",
            overhead < 0.03,
        ))
    assert overhead < OVERHEAD_ASSERT_LIMIT, (
        f"profiler overhead {overhead * 100:.1f}% exceeds even the lenient "
        f"{OVERHEAD_ASSERT_LIMIT * 100:.0f}% CI bound"
    )


def test_histogram_record_throughput(capsys):
    """Raw ``Histogram.record`` must stay cheap enough for per-phase use."""
    histogram = Histogram()
    values = [1e-5 * (1.3 ** (index % 40)) for index in range(256)]
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for index in range(RECORD_COUNT):
            histogram.record(values[index % 256])
        best = min(best, time.perf_counter() - started)
    per_record_ns = best / RECORD_COUNT * 1e9
    rate = RECORD_COUNT / best
    assert histogram.count == RECORD_COUNT * REPEATS

    record_trajectory("synthetic", {
        "kind": "histogram_record",
        "records": RECORD_COUNT,
        "per_record_ns": per_record_ns,
        "records_per_second": rate,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "histogram record cost",
            "ISSUE 8: O(1) record, cheap enough for per-phase instrumentation",
            f"{per_record_ns:.0f} ns/record ({rate / 1e6:.2f} M records/s)",
            per_record_ns < 10_000,
        ))
    assert per_record_ns < 50_000, "histogram record is pathologically slow"

"""Durable write path: journalled throughput, cluster read-after-write, replay.

Three questions the new write subsystem must answer with numbers:

* **What does durability cost?**  Apply a burst of edits through the
  :class:`~repro.writes.coordinator.WriteCoordinator` under each journal
  fsync policy (``never`` / ``batch`` / ``always``) plus journalling
  disabled, and record edits/second.  The gap between ``never`` and
  ``always`` is the price of power-loss durability; ``batch`` (the default)
  should sit near ``never`` while still surviving any process crash.
* **How fast is read-after-write through the cluster?**  POST an edit
  through a live 2-worker router and time until the *next* ``/window`` read
  reflects it — the eager cache-invalidation path, measured end to end over
  real sockets.  Without the eager bump this would be one ~500 ms health
  interval; with it, one round trip.
* **How long does crash recovery take?**  Apply a burst of acknowledged,
  un-checkpointed edits, throw the worker memory away (the SIGKILL
  equivalent — only SQLite + journal survive), and time the fresh open
  including journal replay, against a plain open as the baseline.

Measurements append to ``BENCH_writes.json`` at the repository root,
building a trajectory across PRs.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.reporting import format_comparison
from repro.cluster.router import ClusterRuntime
from repro.config import ClusterConfig, GraphVizDBConfig, WriteConfig
from repro.service.frontend import GraphVizDBService, ServiceRuntime
from repro.storage.sqlite_backend import load_from_sqlite, save_to_sqlite
from repro.writes.journal import journal_path_for, replay_journal


def bench_scale() -> float:
    """The shared dataset scale factor (mirrors ``conftest.bench_scale``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


#: Where the write-path trajectory is recorded (repo root).
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_writes.json"

#: Edits applied per fsync-policy throughput run.
EDITS_PER_RUN = 200

#: Acknowledged, un-checkpointed edits behind the replay-recovery measurement.
REPLAY_EDITS = 150

#: Edit → read round trips in the cluster read-after-write measurement.
RAW_ROUNDS = 15


def record_trajectory(measurements: dict) -> None:
    """Append one measurement entry to the BENCH_writes.json trajectory."""
    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": bench_scale(),
        "dataset": "patent-like",
        "cpu_count": os.cpu_count(),
        **measurements,
    }
    history: list = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(entry)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def sqlite_source(patent_preprocessed, tmp_path_factory):
    """One saved copy of the benchmark dataset; runs clone it per policy."""
    base = tmp_path_factory.mktemp("bench-writes")
    path = base / "source.db"
    save_to_sqlite(patent_preprocessed.database, path)
    return base, path


def _cloned(base: Path, source: Path, name: str) -> Path:
    clone = base / f"{name}.db"
    clone.write_bytes(source.read_bytes())
    return clone


def _apply_edits(runtime: ServiceRuntime, count: int, base_id: int) -> float:
    """Apply ``count`` add_node edits; returns elapsed seconds."""
    started = time.perf_counter()
    for index in range(count):
        runtime.edit("bench", "add_node", {
            "node_id": base_id + index, "label": f"bench-node-{index}",
            "x": float(index % 50), "y": float(index // 50),
        })
    return time.perf_counter() - started


def test_write_throughput_by_fsync_policy(sqlite_source, capsys):
    """Durability pricing: edits/second under each journal policy."""
    base, source = sqlite_source
    measurements: dict[str, object] = {"kind": "throughput", "edits": EDITS_PER_RUN}
    policies: list[tuple[str, WriteConfig]] = [
        ("no_journal", WriteConfig(journal_enabled=False)),
        ("never", WriteConfig(journal_fsync="never")),
        ("batch", WriteConfig(journal_fsync="batch", journal_fsync_batch=16)),
        ("always", WriteConfig(journal_fsync="always")),
    ]
    rates: dict[str, float] = {}
    for name, write_config in policies:
        clone = _cloned(base, source, f"policy-{name}")
        service = GraphVizDBService(GraphVizDBConfig(write=write_config))
        service.attach_sqlite("bench", str(clone))
        with ServiceRuntime(service) as runtime:
            runtime.window_query("bench")  # warm the pool
            elapsed = _apply_edits(runtime, EDITS_PER_RUN, base_id=1_000_000)
        rates[name] = EDITS_PER_RUN / elapsed
        measurements[f"{name}_eps"] = rates[name]
        measurements[f"{name}_ms"] = elapsed * 1000
    record_trajectory(measurements)

    with capsys.disabled():
        print()
        print(f"Write throughput ({EDITS_PER_RUN} add_node edits, one writer):")
        for name, rate in rates.items():
            print(f"  {name:<10}: {rate:8.0f} edits/s")
        print(format_comparison(
            "write-ahead journal durability pricing",
            "ISSUE 5: batch fsync must not collapse write throughput",
            f"batch reaches {rates['batch'] / rates['no_journal']:.0%} of "
            "unjournalled throughput",
            rates["batch"] > 0,
        ))
    # Sanity, not a perf bar: every policy must actually apply every edit.
    assert all(rate > 0 for rate in rates.values())


def test_replay_recovery_time(sqlite_source, capsys):
    """SIGKILL recovery: fresh open + journal replay vs plain open."""
    base, source = sqlite_source
    clone = _cloned(base, source, "replay")
    service = GraphVizDBService(GraphVizDBConfig(
        # No automatic checkpoint: every edit must still be in the journal.
        write=WriteConfig(checkpoint_every_records=0)
    ))
    service.attach_sqlite("bench", str(clone))
    with ServiceRuntime(service) as runtime:
        runtime.window_query("bench")
        _apply_edits(runtime, REPLAY_EDITS, base_id=2_000_000)
    # The runtime is gone: only the SQLite file + journal survive, exactly
    # the post-SIGKILL state of a worker.
    assert journal_path_for(clone).exists()

    started = time.perf_counter()
    plain = load_from_sqlite(clone)
    plain_open_seconds = time.perf_counter() - started

    started = time.perf_counter()
    recovered = load_from_sqlite(clone)
    replayed = replay_journal(recovered, clone)
    recovery_seconds = time.perf_counter() - started
    assert replayed == REPLAY_EDITS
    assert recovered.table(0).rows_for_node(2_000_000)
    assert not plain.table(0).rows_for_node(2_000_000)

    record_trajectory({
        "kind": "replay_recovery",
        "replayed_records": replayed,
        "plain_open_ms": plain_open_seconds * 1000,
        "recovery_open_ms": recovery_seconds * 1000,
        "replay_overhead_ms": (recovery_seconds - plain_open_seconds) * 1000,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "crash recovery by journal replay",
            f"ISSUE 5: a SIGKILLed worker's {REPLAY_EDITS} acknowledged edits "
            "replay on the next open",
            f"plain open {plain_open_seconds * 1000:.0f} ms, open+replay "
            f"{recovery_seconds * 1000:.0f} ms ({replayed} records)",
            replayed == REPLAY_EDITS,
        ))


def test_cluster_read_after_write_latency(sqlite_source, capsys):
    """Time from POST /edit ack to the next consistent /window read."""
    base, source = sqlite_source
    paths = {
        "raw-a": str(_cloned(base, source, "cluster-a")),
        "raw-b": str(_cloned(base, source, "cluster-b")),
    }
    config = GraphVizDBConfig(cluster=ClusterConfig(
        num_workers=2, health_interval_seconds=30.0,  # only eager invalidation
    ))
    latencies: list[float] = []
    with ClusterRuntime(paths, config=config) as runtime:
        port = runtime.port
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            def request(method: str, target: str, body: bytes | None = None):
                connection.request(method, target, body=body)
                response = connection.getresponse()
                return response.status, json.loads(response.read())

            window = (
                "/window?dataset=raw-a&min_x=0&min_y=0&max_x=60&max_y=10"
            )
            status, before = request("GET", window)
            assert status == 200
            rows = before["num_rows"]
            for round_index in range(RAW_ROUNDS):
                request("GET", window)  # ensure the pre-edit window is cached
                started = time.perf_counter()
                status, ack = request(
                    "POST", f"/edit/add_node?dataset=raw-a",
                    json.dumps({
                        "node_id": 3_000_000 + round_index,
                        "label": f"raw-{round_index}",
                        "x": float(round_index % 50), "y": 5.0,
                    }).encode(),
                )
                assert status == 200, ack
                status, after = request("GET", window)
                elapsed = time.perf_counter() - started
                assert status == 200 and after["num_rows"] == rows + 1, (
                    rows, after["num_rows"],
                )
                rows = after["num_rows"]
                latencies.append(elapsed)
        finally:
            connection.close()
    latencies.sort()
    median_ms = latencies[len(latencies) // 2] * 1000
    record_trajectory({
        "kind": "read_after_write",
        "rounds": RAW_ROUNDS,
        "median_ms": median_ms,
        "max_ms": latencies[-1] * 1000,
        "health_interval_ms": 30_000,
    })
    with capsys.disabled():
        print()
        print(format_comparison(
            "cluster read-after-write consistency latency",
            "ISSUE 5: an edit is visible to the next /window without waiting "
            "out a health interval",
            f"median edit→consistent-read {median_ms:.1f} ms "
            f"(health interval 30000 ms)",
            median_ms < 30_000,
        ))
    assert median_ms < 30_000  # consistent far inside the probe cadence
